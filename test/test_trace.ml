(* The tracing subsystem: Congest.Trace ring semantics, engine-recorded
   event streams, the determinism contract (simulated accounting and
   events are byte-identical for any domain count, and invariant under
   fast-forwarding), and the Report.Ctrace / Report.Perfetto exporters. *)

open Graphlib
module T = Congest.Trace
module J = Report.Json
module CP = Obs.Critpath
module CR = Report.Critpath_report

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

module M = struct
  type t = Int of int

  let bits (Int v) = Congest.Bits.int_bits ~universe:(abs v + 2)
end

module E = Congest.Engine.Make (M)

let events t =
  let acc = ref [] in
  T.iter_events t (fun e -> acc := e :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Ring buffer and sampling                                            *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow () =
  let tr =
    T.create
      ~config:{ T.default_config with T.capacity = 8 }
      ()
  in
  for r = 0 to 19 do
    T.round_tick tr ~round:r ~bits:r ~frames:1 ~messages:0 ~stepped:0
  done;
  let tot = T.totals tr in
  check ci "every push counted" 20 tot.T.recorded;
  check ci "evictions counted honestly" 12 tot.T.overwritten;
  (* Aggregates are exact despite the evictions... *)
  check ci "total rounds exact" 20 tot.T.rounds;
  check ci "total bits exact" (19 * 20 / 2) tot.T.bits;
  (* ...while the ring holds only the newest [capacity] events. *)
  let evs = events tr in
  check ci "ring holds capacity events" 8 (List.length evs);
  (match List.hd evs with
  | T.Round { round; _ } -> check ci "oldest survivor" 12 round
  | _ -> Alcotest.fail "expected a Round event");
  match List.rev evs with
  | T.Round { round; _ } :: _ -> check ci "newest survivor" 19 round
  | _ -> Alcotest.fail "expected a Round event"

let test_sampling () =
  let tr =
    T.create
      ~config:
        {
          T.capacity = 256;
          sample_messages = 2;
          sample_fibers = 2;
          sample_spans = 2;
        }
      ()
  in
  for i = 0 to 4 do
    T.message tr ~round:1 ~sent:0 ~sender:i ~dest:0 ~edge:i ~bits:8
  done;
  let msgs =
    List.filter (function T.Message _ -> true | _ -> false) (events tr)
  in
  check ci "every 2nd message survives" 3 (List.length msgs);
  check ci "the rest counted as sampled out" 2 (T.totals tr).T.sampled_out;
  (* Fiber sampling keys on the node id, so one node's lifecycle is
     either fully present or fully absent. *)
  check cb "even node sampled in" true (T.want_fiber tr 0);
  check cb "odd node sampled out" false (T.want_fiber tr 1);
  T.fiber_resume tr ~round:1 ~node:1 ~cause:T.Wake_deadline ~sender:(-1)
    ~sent:(-1);
  check cb "no event for a sampled-out fiber" true
    (not
       (List.exists (function T.Resume _ -> true | _ -> false) (events tr)));
  (* Span sampling drops whole open/close pairs; the body still runs. *)
  let ran = ref 0 in
  T.span tr "s" (fun () -> incr ran);
  T.span tr "s" (fun () -> incr ran);
  check ci "both span bodies ran" 2 !ran;
  check ci "one open/close pair survives" 2
    (List.length
       (List.filter
          (function T.Span_open _ | T.Span_close _ -> true | _ -> false)
          (events tr)))

let test_phases_and_spans () =
  let tr = T.create () in
  (* The implicit "run" phase records nothing, so it is dropped. *)
  T.phase tr "a";
  T.round_tick tr ~round:0 ~bits:4 ~frames:1 ~messages:1 ~stepped:2;
  T.span tr "inner" (fun () -> ());
  T.phase tr "b";
  (* "b" stays empty: dropped from both views, keeping them aligned. *)
  T.finish tr;
  check
    (Alcotest.list Alcotest.string)
    "empty phases dropped (sim view)" [ "a" ]
    (List.map (fun (p : T.sim_phase) -> p.T.label) (T.sim_phases tr));
  check
    (Alcotest.list Alcotest.string)
    "empty phases dropped (host view)" [ "a" ]
    (List.map (fun (p : T.host_phase) -> p.T.label) (T.host_phases tr));
  let labels =
    List.filter_map
      (function
        | T.Phase_open { label; _ } -> Some ("open:" ^ label)
        | T.Phase_close { label; _ } -> Some ("close:" ^ label)
        | T.Span_open { label; _ } -> Some ("span:" ^ label)
        | _ -> None)
      (events tr)
  in
  check
    (Alcotest.list Alcotest.string)
    "marker order" [ "open:a"; "span:inner"; "close:a"; "open:b" ] labels;
  (* "a" closes when "b" opens; "b" never records a round, so [finish]
     emits no further close marker.  Idempotence: *)
  T.finish tr;
  check ci "finish is idempotent" 1
    (List.length (T.sim_phases tr))

(* ------------------------------------------------------------------ *)
(* Engine recording                                                    *)
(* ------------------------------------------------------------------ *)

(* Staggered ping/echo over a star: exercises parking, waking, traffic
   and a quiescent span the engine can fast-forward. *)
let star_run ?faults ?(domains = 1) ?(fast_forward = true) ~trace () =
  E.run ?faults ~trace ~domains ~fast_forward (Generators.star 29)
    (fun ctx ->
      if E.my_id ctx = 0 then begin
        E.idle ctx 12;
        E.broadcast ctx (M.Int 5);
        let echoes = E.wait ctx 30 in
        List.length echoes
      end
      else
        match E.wait ctx 60 with
        | (0, M.Int v) :: _ ->
            E.send ctx ~dest:0 (M.Int (v * 2));
            ignore (E.wait ctx 1);
            v
        | _ -> -1)

let test_engine_records () =
  let tr = T.create () in
  let res = star_run ~trace:tr () in
  T.finish tr;
  let tot = T.totals tr in
  (match T.meta tr with
  | Some (n, m, bw) ->
      check ci "meta n" 29 n;
      check ci "meta m" 28 m;
      check cb "bandwidth positive" true (bw > 0)
  | None -> Alcotest.fail "meta not recorded");
  check ci "rounds match stats" res.E.stats.Congest.Stats.rounds tot.T.rounds;
  check ci "frames match charged rounds"
    res.E.stats.Congest.Stats.charged_rounds tot.T.frames;
  check ci "bits match stats" res.E.stats.Congest.Stats.total_bits tot.T.bits;
  check ci "messages match stats" res.E.stats.Congest.Stats.messages
    tot.T.messages;
  check ci "fast-forward matches stats"
    res.E.stats.Congest.Stats.fast_forwarded_rounds tot.T.fast_forwarded;
  let has p = List.exists p (events tr) in
  check cb "round events" true (has (function T.Round _ -> true | _ -> false));
  check cb "message events" true
    (has (function T.Message _ -> true | _ -> false));
  check cb "park events" true (has (function T.Park _ -> true | _ -> false));
  check cb "resume events" true
    (has (function T.Resume _ -> true | _ -> false));
  check cb "fast-forward events" true
    (has (function T.Fast_forward _ -> true | _ -> false));
  (* Every delivery happens strictly after its send on the timeline. *)
  T.iter_events tr (function
    | T.Message { round; sent; _ } ->
        check cb "sent before delivered" true (sent < round)
    | _ -> ())

let test_engine_records_faults () =
  let tr = T.create () in
  let faults = Congest.Faults.make ~seed:5 ~drop:0.3 () in
  ignore (star_run ~faults ~trace:tr ());
  T.finish tr;
  let tot = T.totals tr in
  check cb "drops fired" true (tot.T.dropped > 0);
  (* Fault events are never sampled or lost below ring capacity, so the
     stream count equals the exact aggregate. *)
  let drop_events =
    List.filter
      (function T.Fault { kind = T.Drop; _ } -> true | _ -> false)
      (events tr)
  in
  check ci "one Drop event per dropped message" tot.T.dropped
    (List.length drop_events)

(* The determinism contract, at the event level: strip the host-side
   Shard events and the stream is identical for any domain count. *)
let sim_events tr =
  List.filter (function T.Shard _ -> true | _ -> false) (events tr)
  |> fun shards ->
  ( List.filter (function T.Shard _ -> false | _ -> true) (events tr),
    List.length shards )

let sim_totals (t : T.totals) =
  (t.T.rounds, t.T.frames, t.T.bits, t.T.messages, t.T.fast_forwarded,
   t.T.dropped, t.T.duplicated, t.T.delayed, t.T.crashed)

let test_domain_count_invariance () =
  let run domains =
    let tr = T.create () in
    let faults = Congest.Faults.make ~seed:2 ~drop:0.15 () in
    ignore (star_run ~faults ~domains ~trace:tr ());
    T.finish tr;
    tr
  in
  let t1 = run 1 and t3 = run 3 in
  check cb "sim totals identical" true
    (sim_totals (T.totals t1) = sim_totals (T.totals t3));
  check cb "sim phases identical" true (T.sim_phases t1 = T.sim_phases t3);
  let ev1, shards1 = sim_events t1 in
  let ev3, shards3 = sim_events t3 in
  check ci "serial run never shards" 0 shards1;
  check cb "sharded run shards" true (shards3 > 0);
  check cb "simulated event stream identical" true (ev1 = ev3)

let test_fast_forward_invariance () =
  let run fast_forward =
    let tr = T.create () in
    ignore (star_run ~fast_forward ~trace:tr ());
    T.finish tr;
    tr
  in
  let t_on = run true and t_off = run false in
  let on = T.totals t_on and off = T.totals t_off in
  check cb "ff actually fired" true (on.T.fast_forwarded > 0);
  check ci "ff off records none" 0 off.T.fast_forwarded;
  check cb "accounting otherwise identical" true
    ( on.T.rounds = off.T.rounds && on.T.frames = off.T.frames
    && on.T.bits = off.T.bits
    && on.T.messages = off.T.messages );
  List.iter2
    (fun (a : T.sim_phase) (b : T.sim_phase) ->
      check cb "per-phase accounting identical" true
        ( a.T.label = b.T.label && a.T.rounds = b.T.rounds
        && a.T.bits = b.T.bits && a.T.frames = b.T.frames
        && a.T.messages = b.T.messages ))
    (T.sim_phases t_on) (T.sim_phases t_off)

(* Full stack: the tester threads span/phase labels down through
   Partition.Stage1 and Prims, and the contract survives the trip. *)
let test_tester_trace_determinism () =
  let g = Generators.apollonian (Random.State.make [| 3 |]) 40 in
  let run domains =
    let tr = T.create () in
    ignore
      (Tester.Planarity_tester.run ~domains ~trace:tr ~seed:1 g ~eps:0.3);
    T.finish tr;
    tr
  in
  let t1 = run 1 and t2 = run 2 in
  check cb "sim totals identical across domains" true
    (sim_totals (T.totals t1) = sim_totals (T.totals t2));
  check cb "sim phases identical across domains" true
    (T.sim_phases t1 = T.sim_phases t2);
  let labels = List.map (fun (p : T.sim_phase) -> p.T.label) (T.sim_phases t1) in
  check cb "stage1 phases labelled" true
    (List.exists
       (fun l -> String.length l >= 12 && String.sub l 0 12 = "stage1-phase")
       labels);
  check cb "stage2 labelled" true (List.mem "stage2" labels);
  check cb "primitive spans recorded" true
    (List.exists
       (function
         | T.Span_open { label = "bcast" | "converge" | "boundary"
                               | "refresh-roots"; _ } -> true
         | _ -> false)
       (events t1))

(* Satellite of the compiled-mode PR: checkpoint snapshots now carry the
   trace state, so a killed-and-resumed --trace run must produce the same
   .ctrace aggregates as an uninterrupted one.  Host-side wall-clock and
   GC deltas legitimately restart at the resume point, so the comparison
   is on the simulated side: totals, per-phase aggregates, config. *)
exception Simulated_kill

let test_checkpoint_resume_trace_identical () =
  let g = Generators.grid 20 20 in
  let eps = 0.05 and seed = 2 in
  let tr_ref = T.create () in
  ignore (Tester.Planarity_tester.run ~trace:tr_ref g ~eps ~seed);
  T.finish tr_ref;
  let store = ref None in
  let tr1 = T.create () in
  let kill_ck =
    {
      Tester.Planarity_tester.every = 1;
      load = (fun () -> None);
      save =
        (fun s ->
          (* Marshal round-trip: the snapshot (trace state included) must
             be marshal-safe, exactly as the file container stores it. *)
          store := Some (Marshal.from_string (Marshal.to_string s []) 0);
          raise Simulated_kill);
    }
  in
  (try
     ignore
       (Tester.Planarity_tester.run ~trace:tr1 ~checkpoint:kill_ck g ~eps
          ~seed);
     Alcotest.fail "simulated kill did not propagate"
   with Simulated_kill -> ());
  (match !store with
  | Some s ->
      check cb "snapshot carries the trace state" true
        (s.Tester.Planarity_tester.ck_trace <> None)
  | None -> Alcotest.fail "no snapshot captured");
  let tr2 = T.create () in
  let resume_ck =
    {
      Tester.Planarity_tester.every = 1;
      load = (fun () -> !store);
      save = (fun _ -> ());
    }
  in
  ignore
    (Tester.Planarity_tester.run ~trace:tr2 ~checkpoint:resume_ck g ~eps ~seed);
  T.finish tr2;
  check cb "sim totals identical after kill+resume" true
    (sim_totals (T.totals tr_ref) = sim_totals (T.totals tr2));
  check cb "sim phases identical after kill+resume" true
    (T.sim_phases tr_ref = T.sim_phases tr2);
  check cb "config identical" true (T.config tr_ref = T.config tr2);
  (* The causal wake slots ride through the PLNRCK02 snapshot unchanged,
     so the critical path of the resumed run is the reference run's. *)
  check cb "sim event stream identical after kill+resume" true
    (fst (sim_events tr_ref) = fst (sim_events tr2));
  check cb "critpath identical after kill+resume" true
    (CR.analyze (Report.Ctrace.of_trace tr_ref)
    = CR.analyze (Report.Ctrace.of_trace tr2))

(* The snapshot plumbing underneath: copy is a deep, independent image
   and restore_into overwrites the destination with it. *)
let test_copy_restore_into () =
  let tr = T.create () in
  ignore (star_run ~trace:tr ());
  T.finish tr;
  let snap = T.copy tr in
  check cb "copy preserves totals" true (T.totals snap = T.totals tr);
  check cb "copy preserves events" true (events snap = events tr);
  (* Mutating the original must not leak into the copy... *)
  ignore (star_run ~trace:tr ());
  check cb "copy unaffected by later recording" true
    (sim_totals (T.totals snap) <> sim_totals (T.totals tr));
  (* ...and restore_into brings a fresh recorder to the copied state. *)
  let dst = T.create () in
  T.restore_into dst ~from:snap;
  check cb "restore_into reproduces totals" true
    (T.totals dst = T.totals snap);
  check cb "restore_into reproduces events" true (events dst = events snap);
  check cb "restore_into reproduces phases" true
    (T.sim_phases dst = T.sim_phases snap)

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

let analyze tr = CR.analyze (Report.Ctrace.of_trace tr)

(* Structural sanity shared by every critpath assertion below: the hops
   chain head-to-tail and their weights telescope to the path length. *)
let check_chain (r : CP.report) =
  let rec go from_node from_round = function
    | [] -> ()
    | (h : CP.hop) :: rest ->
        check ci "hop chains from previous node" from_node h.CP.from_node;
        check ci "hop chains from previous round" from_round h.CP.from_round;
        check ci "hop weight telescopes" (h.CP.round - h.CP.from_round)
          h.CP.rounds;
        check cb "excess within the hop" true
          (h.CP.excess >= 0 && h.CP.excess <= max 0 (h.CP.rounds - 1));
        go h.CP.node h.CP.round rest
  in
  (match r.CP.hops with
  | [] -> check ci "empty path is zero rounds" 0 r.CP.path_rounds
  | (h : CP.hop) :: _ -> go h.CP.from_node r.CP.start_round r.CP.hops);
  check ci "hop rounds sum to the path"
    (List.fold_left (fun a (h : CP.hop) -> a + h.CP.rounds) 0 r.CP.hops)
    r.CP.path_rounds;
  check ci "path spans start to end" (r.CP.end_round - r.CP.start_round)
    r.CP.path_rounds;
  check ci "rounds decompose into deliver/slack/excess/stitch"
    (r.CP.deliver_rounds + r.CP.timer_rounds + r.CP.excess_rounds
   + r.CP.stitch_rounds)
    r.CP.path_rounds;
  check ci "contracted = path - excess"
    (r.CP.path_rounds - r.CP.excess_rounds)
    r.CP.contracted_rounds

(* Every engine-recorded resume carries its causal wake slot, and every
   deliver wake names a frame the ring actually recorded. *)
let test_resume_causal_slots () =
  let tr = T.create () in
  ignore (star_run ~trace:tr ());
  T.finish tr;
  let frames = Hashtbl.create 64 in
  T.iter_events tr (function
    | T.Message { round; sent; sender; dest; _ } ->
        Hashtbl.replace frames (dest, round, sender, sent) ()
    | _ -> ());
  let resumes = ref 0 and delivers = ref 0 in
  T.iter_events tr (function
    | T.Resume { round; node; cause; sender; sent } -> (
        incr resumes;
        check cb "cause recorded" true (cause <> T.Wake_unknown);
        match cause with
        | T.Wake_deliver ->
            incr delivers;
            check cb "deliver slot names a recorded frame" true
              (Hashtbl.mem frames (node, round, sender, sent))
        | _ ->
            check cb "deadline resumes carry no frame" true
              (sender = -1 && sent = -1))
    | _ -> ());
  check cb "resumes present" true (!resumes > 0);
  check cb "deliver wakes present" true (!delivers > 0)

(* Delay-free tester run: the causal chain explains every round — path
   length equals the run's total rounds, with zero excess. *)
let test_critpath_tester_exact () =
  let g = Generators.apollonian (Random.State.make [| 3 |]) 40 in
  let tr =
    T.create ~config:{ T.default_config with T.capacity = 1 lsl 20 } ()
  in
  ignore (Tester.Planarity_tester.run ~trace:tr ~seed:1 g ~eps:0.3);
  T.finish tr;
  let v = Report.Ctrace.of_trace tr in
  check cb "ring complete" false (CR.lossy_view v);
  let r = CR.analyze v in
  check_chain r;
  check cb "path non-trivial" true (r.CP.path_rounds > 0);
  check ci "path spans the whole run" r.CP.total_rounds r.CP.path_rounds;
  check ci "no excess on a delay-free run" 0 r.CP.excess_rounds;
  check cb "not lossy" false r.CP.lossy;
  check ci "phase profile attributes the whole path"
    (r.CP.path_rounds - r.CP.stitch_rounds)
    (List.fold_left
       (fun a (p : CP.phase_profile) ->
         a + p.CP.deliver_rounds + p.CP.timer_rounds + p.CP.excess_rounds)
       0 r.CP.phases);
  check cb "tester phases named" true
    (List.exists (fun (p : CP.phase_profile) -> p.CP.phase = "stage2")
       r.CP.phases
    || List.exists
         (fun (p : CP.phase_profile) ->
           String.length p.CP.phase >= 6 && String.sub p.CP.phase 0 6 = "stage1")
         r.CP.phases)

(* A delivery-driven relay chain: node 0 fires a token down the path,
   every other node parks on a long deadline and forwards on arrival.
   The run's length is the sum of the wire latencies, which makes delay
   inflation exactly attributable. *)
let relay_run ?faults ~trace k =
  E.run ?faults ~trace (Generators.path k) (fun ctx ->
      let me = E.my_id ctx in
      if me = 0 then begin
        E.send ctx ~dest:1 (M.Int 1);
        ignore (E.wait ctx 1);
        0
      end
      else
        match E.wait ctx 500 with
        | (_, M.Int v) :: _ ->
            if me < k - 1 then E.send ctx ~dest:(me + 1) (M.Int (v + 1));
            ignore (E.wait ctx 1);
            v
        | _ -> -1)

let test_critpath_relay_clean () =
  let tr = T.create () in
  ignore (relay_run ~trace:tr 12);
  T.finish tr;
  let r = analyze tr in
  check_chain r;
  check ci "one deliver hop per relay edge" 11 r.CP.deliver_hops;
  check ci "clean wire: no excess" 0 r.CP.excess_rounds;
  check ci "path spans the run" r.CP.total_rounds r.CP.path_rounds;
  (* The blame table ranks the relay's directed edges. *)
  check ci "blame covers the relay edges" 11 (List.length r.CP.edges);
  List.iter
    (fun (b : CP.edge_blame) ->
      check ci "each edge blamed once" 1 b.CP.hops;
      check ci "each edge costs its nominal round" 1 b.CP.rounds)
    r.CP.edges

(* Delay storm on the relay: every frame arrives exactly one round late,
   the run inflates by one round per hop, and the fault-impact
   attribution accounts for the inflation exactly — contracting the
   injected delays recovers the clean run's length. *)
let test_critpath_relay_inflation () =
  let k = 12 in
  let clean = T.create () in
  ignore (relay_run ~trace:clean k);
  T.finish clean;
  let rc = analyze clean in
  let delayed = T.create () in
  let faults = Congest.Faults.make ~seed:1 ~delay:1.0 ~max_delay:1 () in
  ignore (relay_run ~faults ~trace:delayed k);
  T.finish delayed;
  let rd = analyze delayed in
  check_chain rd;
  check cb "delays inflated the run" true
    (rd.CP.path_rounds > rc.CP.path_rounds);
  check ci "every relay hop inflated" (k - 1) rd.CP.excess_rounds;
  check ci "excess accounts for the whole inflation"
    (rd.CP.path_rounds - rc.CP.path_rounds)
    rd.CP.excess_rounds;
  check ci "contracting the delays recovers the clean run"
    rc.CP.path_rounds rd.CP.contracted_rounds;
  (* The per-edge blame surfaces the inflation, hop by hop. *)
  check ci "blamed excess matches"
    rd.CP.excess_rounds
    (List.fold_left (fun a (b : CP.edge_blame) -> a + b.CP.excess) 0
       rd.CP.edges)

(* The reported path is invariant under fast-forwarding: the baseline's
   per-round spins collapse into the deadline waits they implement. *)
let test_critpath_fast_forward_invariance () =
  let run fast_forward =
    let tr = T.create () in
    ignore (star_run ~fast_forward ~trace:tr ());
    T.finish tr;
    tr
  in
  let t_on = run true and t_off = run false in
  check cb "ff fired" true ((T.totals t_on).T.fast_forwarded > 0);
  check cb "critpath report identical under fast-forward" true
    (analyze t_on = analyze t_off)

(* Losing ring events must be surfaced, not silently analyzed around:
   the recorder feeds the host-side trace_dropped_events counter on both
   eviction and sampling, and the view is flagged lossy. *)
let test_dropped_events_metric () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled was;
      Obs.Metrics.reset ())
    (fun () ->
      let value () =
        match
          List.find_opt
            (fun (f : Obs.Metrics.family) ->
              f.Obs.Metrics.name = "trace_dropped_events")
            (Obs.Metrics.snapshot ())
        with
        | Some
            {
              Obs.Metrics.series =
                [ { Obs.Metrics.value = Obs.Metrics.Counter_v v; _ } ];
              _;
            } ->
            v
        | _ -> Alcotest.fail "trace_dropped_events family missing"
      in
      let tr =
        T.create ~config:{ T.default_config with T.capacity = 8 } ()
      in
      for r = 0 to 19 do
        T.round_tick tr ~round:r ~bits:0 ~frames:0 ~messages:0 ~stepped:0
      done;
      check ci "ring evictions counted" 12 (value ());
      check cb "view flagged lossy" true
        (CR.lossy_view (Report.Ctrace.of_trace tr));
      let tr2 =
        T.create
          ~config:
            {
              T.capacity = 64;
              sample_messages = 2;
              sample_fibers = 1;
              sample_spans = 1;
            }
          ()
      in
      for i = 0 to 4 do
        T.message tr2 ~round:1 ~sent:0 ~sender:i ~dest:0 ~edge:i ~bits:8
      done;
      check ci "sampling holes add on" 14 (value ());
      check cb "sampled view flagged lossy" true
        (CR.lossy_view (Report.Ctrace.of_trace tr2)))

(* ------------------------------------------------------------------ *)
(* Ctrace: binary round-trip                                           *)
(* ------------------------------------------------------------------ *)

let with_tmp f =
  let path = Filename.temp_file "trace" ".ctrace" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let traced_run () =
  let tr = T.create () in
  let faults = Congest.Faults.make ~seed:9 ~drop:0.1 ~duplicate:0.1 () in
  ignore (star_run ~faults ~domains:2 ~trace:tr ());
  T.finish tr;
  tr

let test_ctrace_roundtrip () =
  let tr = traced_run () in
  with_tmp (fun path ->
      Report.Ctrace.write path tr;
      let v = Report.Ctrace.read path in
      check ci "version" Report.Ctrace.version v.Report.Ctrace.version;
      check ci "n" 29 v.Report.Ctrace.n;
      check ci "m" 28 v.Report.Ctrace.m;
      check cb "totals survive" true (v.Report.Ctrace.totals = T.totals tr);
      check cb "config survives" true (v.Report.Ctrace.config = T.config tr);
      check cb "sim phases survive" true
        (v.Report.Ctrace.sim_phases = T.sim_phases tr);
      check cb "host phases survive" true
        (v.Report.Ctrace.host_phases = T.host_phases tr);
      check cb "events survive, oldest first" true
        (Array.to_list v.Report.Ctrace.events = events tr);
      (* of_trace is the same view without the filesystem. *)
      check cb "of_trace = write;read" true (Report.Ctrace.of_trace tr = v);
      (* Serialization is a pure function of the trace: write twice,
         byte-identical files. *)
      let bytes1 = read_file path in
      Report.Ctrace.write path tr;
      check cb "deterministic bytes" true (read_file path = bytes1))

let test_ctrace_bad_input () =
  let expect_failure name f =
    match f () with
    | (_ : Report.Ctrace.view) -> Alcotest.failf "%s: accepted" name
    | exception Failure msg ->
        check cb (name ^ ": message is specific") true
          (String.length msg > 10)
  in
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACEFILE AT ALL";
      close_out oc;
      expect_failure "bad magic" (fun () -> Report.Ctrace.read path));
  with_tmp (fun path ->
      let tr = traced_run () in
      Report.Ctrace.write path tr;
      let bytes = read_file path in
      (* Bump the version field (first int64 after the 8-byte magic). *)
      let patched = Bytes.of_string bytes in
      Bytes.set patched 8 '\x63';
      let oc = open_out_bin path in
      output_bytes oc patched;
      close_out oc;
      expect_failure "unknown version" (fun () -> Report.Ctrace.read path);
      (* Truncate mid-stream. *)
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 (String.length bytes / 2));
      close_out oc;
      expect_failure "truncated" (fun () -> Report.Ctrace.read path))

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let test_perfetto_export () =
  let tr = traced_run () in
  let v = Report.Ctrace.of_trace tr in
  let j = Report.Perfetto.of_view v in
  let field k = function
    | J.Obj fields -> List.assoc k fields
    | _ -> Alcotest.fail "expected an object"
  in
  let evs =
    match field "traceEvents" j with
    | J.List l -> l
    | _ -> Alcotest.fail "traceEvents must be a list"
  in
  check cb "events exported" true (List.length evs > 0);
  (* Every row is a trace_event object with a phase tag; duration and
     complete events must carry timestamps. *)
  List.iter
    (fun e ->
      match field "ph" e with
      | J.String ph ->
          check cb "known phase tag" true
            (List.mem ph [ "B"; "E"; "X"; "i"; "s"; "f"; "C"; "M" ]);
          if ph <> "M" then (
            match field "ts" e with
            | J.Int ts -> check cb "timestamp non-negative" true (ts >= 0)
            | _ -> Alcotest.fail "ts must be an int")
      | _ -> Alcotest.fail "ph must be a string")
    evs;
  (match field "otherData" j with
  | J.Obj _ -> ()
  | _ -> Alcotest.fail "otherData must be an object");
  (* The export is a pure function of the view. *)
  check cb "deterministic" true
    (J.to_string j = J.to_string (Report.Perfetto.of_view v))

(* Shared helpers for picking apart the trace_event rows. *)
let doc_events j =
  match j with
  | J.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | J.List l -> l
      | _ -> Alcotest.fail "traceEvents must be a list")
  | _ -> Alcotest.fail "expected an object"

let str k e =
  match e with
  | J.Obj f -> (
      match List.assoc_opt k f with Some (J.String s) -> Some s | _ -> None)
  | _ -> None

let num k e =
  match e with
  | J.Obj f -> (
      match List.assoc_opt k f with Some (J.Int i) -> Some i | _ -> None)
  | _ -> None

(* Message flow arrows: each recorded delivery exports one s/f pair
   under a private id, tail at the send round, head at the delivery
   round — round-tripped through the .ctrace container. *)
let test_perfetto_flow_events () =
  let tr = traced_run () in
  with_tmp (fun path ->
      Report.Ctrace.write path tr;
      let v = Report.Ctrace.read path in
      let evs = doc_events (Report.Perfetto.of_view v) in
      let deliveries =
        Array.to_list v.Report.Ctrace.events
        |> List.filter_map (function
             | T.Message { round; sent; _ } -> Some (sent, round)
             | _ -> None)
      in
      let flows ph =
        List.filter_map
          (fun e ->
            if str "cat" e = Some "message" && str "ph" e = Some ph then
              match (num "id" e, num "ts" e) with
              | Some id, Some ts -> Some (id, ts)
              | _ -> Alcotest.fail "flow event lacks id/ts"
            else None)
          evs
      in
      let starts = flows "s" and finishes = flows "f" in
      check ci "one flow tail per delivery" (List.length deliveries)
        (List.length starts);
      check ci "one flow head per delivery" (List.length deliveries)
        (List.length finishes);
      (* Ids are assigned in event order, so the k-th pair is the k-th
         recorded delivery; the arrow spans exactly its wire time. *)
      List.iteri
        (fun k (sent, round) ->
          let id, ts_s = List.nth starts k in
          let id', ts_f = List.nth finishes k in
          check ci "pair ids match" id id';
          check ci "tail at the send round" sent ts_s;
          check ci "head at the delivery round" round ts_f)
        deliveries)

(* Fast-forwarded quiescent spans export as X slices whose durations sum
   to the run's fast-forward total. *)
let test_perfetto_ff_spans () =
  let tr = T.create () in
  ignore (star_run ~trace:tr ());
  T.finish tr;
  let v = Report.Ctrace.of_trace tr in
  let evs = doc_events (Report.Perfetto.of_view v) in
  let spans =
    List.filter (fun e -> str "name" e = Some "fast-forward") evs
  in
  check cb "ff spans exported" true (spans <> []);
  let total =
    List.fold_left
      (fun a e ->
        match num "dur" e with
        | Some d ->
            check cb "span has a start" true (num "ts" e <> None);
            a + d
        | None -> Alcotest.fail "ff span lacks dur")
      0 spans
  in
  check ci "span durations sum to the ff total"
    (T.totals tr).T.fast_forwarded total

(* The critical-path overlay: one pid-4 slice per hop, chained
   head-to-tail by flow arrows whose ids live above the message ids. *)
let test_perfetto_critpath_overlay () =
  let tr = T.create () in
  ignore (star_run ~trace:tr ());
  T.finish tr;
  let v = Report.Ctrace.of_trace tr in
  let r = CR.analyze v in
  check cb "path found" true (r.CP.hops <> []);
  let evs =
    doc_events (Report.Perfetto.of_view ~critpath:r v)
    |> List.filter (fun e -> num "pid" e = Some 4)
  in
  let slices = List.filter (fun e -> str "ph" e = Some "X") evs in
  let starts = List.filter (fun e -> str "ph" e = Some "s") evs in
  let finishes = List.filter (fun e -> str "ph" e = Some "f") evs in
  let nh = List.length r.CP.hops in
  check ci "one slice per hop" nh (List.length slices);
  check ci "one arrow tail per hop" nh (List.length starts);
  check ci "one arrow head per hop" nh (List.length finishes);
  List.iteri
    (fun i (h : CP.hop) ->
      let s = List.nth starts i and f = List.nth finishes i in
      check ci "arrow id is the hop's" (1_000_000_000 + i)
        (Option.get (num "id" s));
      check ci "matching head id" (1_000_000_000 + i)
        (Option.get (num "id" f));
      check ci "tail at the hop's start" h.CP.from_round
        (Option.get (num "ts" s));
      check ci "head at the hop's end" h.CP.round (Option.get (num "ts" f));
      (* Consecutive hops share a round, so the arrows chain. *)
      if i + 1 < nh then
        check ci "arrows connect hop to hop"
          (Option.get (num "ts" f))
          (Option.get (num "ts" (List.nth starts (i + 1)))))
    r.CP.hops;
  (* Without the overlay no pid-4 rows exist. *)
  check cb "overlay is opt-in" true
    (List.for_all
       (fun e -> num "pid" e <> Some 4)
       (doc_events (Report.Perfetto.of_view v)))

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow keeps exact aggregates" `Quick
            test_ring_overflow;
          Alcotest.test_case "per-category sampling" `Quick test_sampling;
          Alcotest.test_case "phases and spans" `Quick test_phases_and_spans;
        ] );
      ( "engine",
        [
          Alcotest.test_case "records a run" `Quick test_engine_records;
          Alcotest.test_case "records faults exactly" `Quick
            test_engine_records_faults;
          Alcotest.test_case "invariant in domain count" `Quick
            test_domain_count_invariance;
          Alcotest.test_case "invariant under fast-forward" `Quick
            test_fast_forward_invariance;
          Alcotest.test_case "tester threads labels; deterministic" `Quick
            test_tester_trace_determinism;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill + resume keeps .ctrace aggregates" `Quick
            test_checkpoint_resume_trace_identical;
          Alcotest.test_case "copy / restore_into round-trip" `Quick
            test_copy_restore_into;
        ] );
      ( "critpath",
        [
          Alcotest.test_case "resumes carry causal wake slots" `Quick
            test_resume_causal_slots;
          Alcotest.test_case "delay-free path spans the run" `Quick
            test_critpath_tester_exact;
          Alcotest.test_case "relay chain: clean attribution" `Quick
            test_critpath_relay_clean;
          Alcotest.test_case "relay chain: delay inflation attributed" `Quick
            test_critpath_relay_inflation;
          Alcotest.test_case "path invariant under fast-forward" `Quick
            test_critpath_fast_forward_invariance;
          Alcotest.test_case "lossy rings feed trace_dropped_events" `Quick
            test_dropped_events_metric;
        ] );
      ( "export",
        [
          Alcotest.test_case "ctrace round-trip" `Quick test_ctrace_roundtrip;
          Alcotest.test_case "ctrace rejects bad input" `Quick
            test_ctrace_bad_input;
          Alcotest.test_case "perfetto trace_event document" `Quick
            test_perfetto_export;
          Alcotest.test_case "perfetto message flow arrows" `Quick
            test_perfetto_flow_events;
          Alcotest.test_case "perfetto fast-forward spans" `Quick
            test_perfetto_ff_spans;
          Alcotest.test_case "perfetto critical-path overlay" `Quick
            test_perfetto_critpath_overlay;
        ] );
    ]
