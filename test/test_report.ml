(* Golden tests for the machine-readable report schemas.

   The JSON emitted under ["planartest.stats/v1"] and
   ["bench.planarity/v1"] is consumed by external tooling (CI artifact
   diffing, plotting scripts), so the key set, key order and value types
   are a contract: any change here must bump the schema tag. *)

open Graphlib
module J = Report.Json
module PT = Tester.Planarity_tester

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let kt = Alcotest.(list (pair string string))

let tag = function
  | J.Null -> "null"
  | J.Bool _ -> "bool"
  | J.Int _ -> "int"
  | J.Float _ -> "float"
  | J.String _ -> "string"
  | J.List _ -> "list"
  | J.Obj _ -> "obj"

let keys_and_tags = function
  | J.Obj fields -> List.map (fun (k, v) -> (k, tag v)) fields
  | j -> Alcotest.failf "expected an object, got %s" (tag j)

let field j k =
  match j with
  | J.Obj fields -> List.assoc k fields
  | _ -> Alcotest.fail "expected an object"

(* A real report, from an actual tester run. *)
let small_report =
  lazy
    (let g = Generators.apollonian (Random.State.make [| 3 |]) 48 in
     (g, PT.run ~seed:1 g ~eps:0.3))

(* A synthetic rejecting report, so the rejections row schema is pinned
   without hunting for a rejecting input. *)
let rejecting_report =
  {
    PT.verdict = PT.Reject [ (3, "euler bound"); (7, "violations") ];
    stage1 = None;
    stage2 = None;
    rounds = 10;
    nominal_rounds = 12;
    messages = 5;
    total_bits = 40;
    fast_forwarded_rounds = 2;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    crashed_nodes = 0;
  }

let stats_keys =
  [
    ("schema", "string");
    ("graph", "obj");
    ("eps", "float");
    ("seed", "int");
    ("domains", "int");
    ("verdict", "string");
    ("rejections", "list");
    ("rounds", "int");
    ("nominal_rounds", "int");
    ("messages", "int");
    ("total_bits", "int");
    ("fast_forwarded_rounds", "int");
    ("telemetry", "null");
  ]

let test_stats_schema () =
  let g, r = Lazy.force small_report in
  let j =
    Report.tester_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps:0.3 ~seed:1
      ~domains:1 r
  in
  check kt "key set, order and types" stats_keys (keys_and_tags j);
  check Alcotest.string "schema tag" "planartest.stats/v1"
    (match field j "schema" with J.String s -> s | _ -> "?");
  check kt "graph sub-object" [ ("n", "int"); ("m", "int") ]
    (keys_and_tags (field j "graph"));
  check Alcotest.string "verdict" "accept"
    (match field j "verdict" with J.String s -> s | _ -> "?")

let test_stats_schema_with_telemetry () =
  (* With telemetry attached, the [telemetry] slot becomes an object but
     no key appears or moves. *)
  let tel = Congest.Telemetry.create () in
  let g = Generators.grid 5 5 in
  let r = PT.run ~seed:1 ~telemetry:tel g ~eps:0.3 in
  let j =
    Report.tester_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps:0.3 ~seed:1
      ~domains:2 ~telemetry:tel r
  in
  let expect =
    List.map
      (fun (k, t) -> if k = "telemetry" then (k, "obj") else (k, t))
      stats_keys
  in
  check kt "same keys, telemetry now an object" expect (keys_and_tags j)

let test_stats_rejections_rows () =
  let j =
    Report.tester_stats ~n:9 ~m:20 ~eps:0.1 ~seed:0 ~domains:1
      rejecting_report
  in
  check Alcotest.string "verdict" "reject"
    (match field j "verdict" with J.String s -> s | _ -> "?");
  match field j "rejections" with
  | J.List rows ->
      check ci "row per distinct rejection" 2 (List.length rows);
      List.iter
        (fun row ->
          check kt "row schema" [ ("node", "int"); ("reason", "string") ]
            (keys_and_tags row))
        rows
  | _ -> Alcotest.fail "rejections must be a list"

(* ------------------------------------------------------------------ *)
(* planartest.stats/v2: v1 plus one "faults" object before "telemetry" *)
(* ------------------------------------------------------------------ *)

let faults_keys =
  [
    ("spec", "string");
    ("seed", "int");
    ("dropped", "int");
    ("duplicated", "int");
    ("delayed", "int");
    ("crashed_nodes", "int");
    ("degraded_reason", "null");
  ]

(* The v2 key list is the v1 list with "faults" spliced in before
   "telemetry" — nothing else moves, so a v1 consumer that ignores
   unknown keys still parses every v1 field of a v2 document. *)
let stats_keys_v2 =
  List.concat_map
    (fun (k, t) ->
      if k = "telemetry" then [ ("faults", "obj"); (k, t) ] else [ (k, t) ])
    stats_keys

let test_stats_schema_v2 () =
  let g, r = Lazy.force small_report in
  let faults = Congest.Faults.make ~seed:7 ~drop:0.05 () in
  let j =
    Report.tester_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps:0.3 ~seed:1
      ~domains:1 ~faults r
  in
  check kt "v2 = v1 + faults before telemetry" stats_keys_v2 (keys_and_tags j);
  check Alcotest.string "schema tag bumped" "planartest.stats/v2"
    (match field j "schema" with J.String s -> s | _ -> "?");
  check kt "faults sub-object" faults_keys (keys_and_tags (field j "faults"));
  check Alcotest.string "spec round-trips" (Congest.Faults.to_spec faults)
    (match field (field j "faults") "spec" with J.String s -> s | _ -> "?")

let test_stats_schema_v2_degraded () =
  (* A synthetic degraded report pins the third verdict value and the
     degraded_reason string without needing a fault schedule that
     actually bites this particular graph. *)
  let r =
    {
      rejecting_report with
      PT.verdict = PT.Degraded "12 dropped";
      dropped = 12;
    }
  in
  let faults = Congest.Faults.make ~seed:3 ~drop:0.5 () in
  let j = Report.tester_stats ~n:9 ~m:20 ~eps:0.1 ~seed:0 ~domains:2 ~faults r in
  check Alcotest.string "verdict" "degraded"
    (match field j "verdict" with J.String s -> s | _ -> "?");
  (match field j "rejections" with
  | J.List [] -> ()
  | _ -> Alcotest.fail "degraded reports carry no rejection rows");
  let fb = field j "faults" in
  check Alcotest.string "degraded_reason surfaces" "12 dropped"
    (match field fb "degraded_reason" with J.String s -> s | _ -> "?");
  check ci "fault counters surface" 12
    (match field fb "dropped" with J.Int d -> d | _ -> -1);
  check ci "fault seed surfaces" 3
    (match field fb "seed" with J.Int s -> s | _ -> -1)

let test_stats_v1_unchanged_without_faults () =
  (* The exact bytes of a v1 document must be unaffected by this PR:
     omitting [?faults] still emits schema v1 with the v1 key set. *)
  let j =
    Report.tester_stats ~n:9 ~m:20 ~eps:0.1 ~seed:0 ~domains:1
      rejecting_report
  in
  check kt "no faults => v1 key set" stats_keys (keys_and_tags j);
  check Alcotest.string "no faults => v1 tag" "planartest.stats/v1"
    (match field j "schema" with J.String s -> s | _ -> "?")

(* ------------------------------------------------------------------ *)
(* planartest.stats/v3: v2 plus one "host" object before "telemetry"   *)
(* ------------------------------------------------------------------ *)

(* v3 = v2 + "host" before "telemetry"; "faults" may be absent when the
   run had no fault policy, so the splice happens on the v1 list too. *)
let splice_host keys =
  List.concat_map
    (fun (k, t) ->
      if k = "telemetry" then [ ("host", "obj"); (k, t) ] else [ (k, t) ])
    keys

let test_stats_schema_v3 () =
  let g = Generators.grid 5 5 in
  let tr = Congest.Trace.create () in
  let r = PT.run ~seed:1 ~trace:tr g ~eps:0.3 in
  Congest.Trace.finish tr;
  let j =
    Report.tester_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps:0.3 ~seed:1
      ~domains:1 ~host:tr r
  in
  check kt "v3 = v1 + host before telemetry" (splice_host stats_keys)
    (keys_and_tags j);
  check Alcotest.string "schema tag bumped" "planartest.stats/v3"
    (match field j "schema" with J.String s -> s | _ -> "?");
  let host = field j "host" in
  check kt "host sub-object" [ ("phases", "list"); ("trace", "obj") ]
    (keys_and_tags host);
  check kt "ring-health sub-object"
    [ ("recorded", "int"); ("overwritten", "int"); ("sampled_out", "int") ]
    (keys_and_tags (field host "trace"));
  (match field host "phases" with
  | J.List (p :: _) ->
      check kt "host phase row schema"
        [
          ("label", "string");
          ("wall_s", "float");
          ("minor_words", "float");
          ("major_words", "float");
          ("minor_collections", "int");
          ("major_collections", "int");
          ("par_rounds", "int");
          ("stepped", "int");
          ("max_stepped", "int");
          ("max_domains", "int");
        ]
        (keys_and_tags p)
  | _ -> Alcotest.fail "a traced run must record at least one host phase");
  (* And with faults too: host still lands between faults and telemetry. *)
  let faults = Congest.Faults.make ~seed:7 ~drop:0.05 () in
  let j2 =
    Report.tester_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps:0.3 ~seed:1
      ~domains:1 ~faults ~host:tr r
  in
  check kt "v3 over v2 key order" (splice_host stats_keys_v2) (keys_and_tags j2)

let test_stats_v2_unchanged_without_host () =
  (* The exact v1/v2 documents must be unaffected by the tracing PR:
     omitting [?host] keeps the old tag and key set. *)
  let faults = Congest.Faults.make ~seed:7 ~drop:0.05 () in
  let j =
    Report.tester_stats ~n:9 ~m:20 ~eps:0.1 ~seed:0 ~domains:1 ~faults
      rejecting_report
  in
  check kt "no host => v2 key set" stats_keys_v2 (keys_and_tags j);
  check Alcotest.string "no host => v2 tag" "planartest.stats/v2"
    (match field j "schema" with J.String s -> s | _ -> "?")

(* ------------------------------------------------------------------ *)
(* harness_stats: one "property" member after "seed", same tagging     *)
(* ------------------------------------------------------------------ *)

(* A synthetic totals value mirroring [rejecting_report], so the
   harness document shape is pinned without hunting for inputs. *)
let synthetic_totals =
  {
    Tester.Harness.verdict =
      Tester.Harness.Reject [ (3, "odd cycle"); (7, "odd cycle") ];
    stage1 = None;
    rounds = 10;
    nominal_rounds = 12;
    messages = 5;
    total_bits = 40;
    fast_forwarded_rounds = 2;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    crashed_nodes = 0;
  }

(* harness documents = the matching tester_stats key list with one
   "property" member spliced in between "seed" and "domains". *)
let splice_property keys =
  List.concat_map
    (fun (k, t) ->
      if k = "domains" then [ ("property", "string"); (k, t) ] else [ (k, t) ])
    keys

let test_harness_stats_property_member () =
  let j =
    Report.harness_stats ~n:9 ~m:12 ~eps:0.2 ~seed:3 ~domains:1
      ~property:"bipartite" synthetic_totals
  in
  check kt "v1 keys + property after seed" (splice_property stats_keys)
    (keys_and_tags j);
  check Alcotest.string "schema tag stays v1" "planartest.stats/v1"
    (match field j "schema" with J.String s -> s | _ -> "?");
  check Alcotest.string "property value" "bipartite"
    (match field j "property" with J.String s -> s | _ -> "?");
  check Alcotest.string "verdict preserved" "reject"
    (match field j "verdict" with J.String s -> s | _ -> "?")

let test_harness_stats_v2_v3_tagging () =
  (* The v1 -> v2 -> v3 bump rules are the tester_stats ones, property
     member included in all three. *)
  let faults = Congest.Faults.make ~seed:7 ~drop:0.05 () in
  let j2 =
    Report.harness_stats ~n:9 ~m:12 ~eps:0.2 ~seed:3 ~domains:1
      ~property:"cycle-free" ~faults synthetic_totals
  in
  check kt "v2 keys + property" (splice_property stats_keys_v2)
    (keys_and_tags j2);
  check Alcotest.string "v2 tag" "planartest.stats/v2"
    (match field j2 "schema" with J.String s -> s | _ -> "?");
  let g = Generators.grid 5 5 in
  let tr = Congest.Trace.create () in
  let _, t = Tester.Bipartite_tester.run ~seed:1 ~trace:tr g ~eps:0.3 in
  Congest.Trace.finish tr;
  let j3 =
    Report.harness_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps:0.3 ~seed:1
      ~domains:1 ~property:"bipartite" ~host:tr t
  in
  check kt "v3 keys + property"
    (splice_property (splice_host stats_keys))
    (keys_and_tags j3);
  check Alcotest.string "v3 tag" "planartest.stats/v3"
    (match field j3 "schema" with J.String s -> s | _ -> "?")

let test_planarity_keys_unchanged_by_harness () =
  (* The locked golden: a planarity run through the post-harness
     pipeline still emits the exact pre-harness v1 key set — no
     "property" member sneaks into tester_stats documents. *)
  let g, r = Lazy.force small_report in
  let j =
    Report.tester_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps:0.3 ~seed:1
      ~domains:1 r
  in
  check cb "no property member" true
    (match j with
    | J.Obj fields -> not (List.mem_assoc "property" fields)
    | _ -> false);
  check kt "v1 key set intact" stats_keys (keys_and_tags j)

(* ------------------------------------------------------------------ *)
(* check_schema: goldens must reject unknown versions loudly           *)
(* ------------------------------------------------------------------ *)

let test_check_schema () =
  let doc tag = J.Obj [ ("schema", J.String tag); ("x", J.Int 1) ] in
  List.iter
    (fun tag ->
      match Report.check_schema (doc tag) with
      | Ok t -> check Alcotest.string "tag echoed" tag t
      | Error e -> Alcotest.failf "known schema %s rejected: %s" tag e)
    Report.known_schemas;
  (* The regression this guards: an unknown version used to fall through
     to the field-by-field golden diff and "pass" whenever the keys
     happened to match.  It must fail, and the message must name both the
     offending tag and the versions this build knows. *)
  (match Report.check_schema (doc "planartest.stats/v99") with
  | Ok _ -> Alcotest.fail "unknown schema version accepted"
  | Error e ->
      check cb "message names the bad tag" true
        (let sub = "planartest.stats/v99" in
         let rec has i =
           i + String.length sub <= String.length e
           && (String.sub e i (String.length sub) = sub || has (i + 1))
         in
         has 0);
      check cb "message lists known versions" true
        (let sub = Report.stats_schema in
         let rec has i =
           i + String.length sub <= String.length e
           && (String.sub e i (String.length sub) = sub || has (i + 1))
         in
         has 0);
      check cb "message lists metrics/v1 too" true
        (let sub = Report.metrics_schema in
         let rec has i =
           i + String.length sub <= String.length e
           && (String.sub e i (String.length sub) = sub || has (i + 1))
         in
         has 0));
  (match Report.check_schema (J.Obj [ ("schema", J.Int 3) ]) with
  | Ok _ -> Alcotest.fail "non-string schema accepted"
  | Error _ -> ());
  (match Report.check_schema (J.Obj [ ("x", J.Int 1) ]) with
  | Ok _ -> Alcotest.fail "missing schema member accepted"
  | Error _ -> ());
  match Report.check_schema (J.List []) with
  | Ok _ -> Alcotest.fail "non-object document accepted"
  | Error _ -> ()

let test_bench_schema () =
  let experiments =
    [ J.Obj [ ("id", J.String "E1"); ("rows", J.List []) ] ]
  in
  let j = Report.bench_envelope ~quick:true ~jobs:2 ~domains:4 experiments in
  check kt "envelope keys and types"
    [
      ("schema", "string");
      ("quick", "bool");
      ("jobs", "int");
      ("domains", "int");
      ("experiments", "list");
    ]
    (keys_and_tags j);
  check Alcotest.string "schema tag" "bench.planarity/v1"
    (match field j "schema" with J.String s -> s | _ -> "?");
  check ci "domains recorded" 4
    (match field j "domains" with J.Int d -> d | _ -> -1)

(* ------------------------------------------------------------------ *)
(* metrics/v1: the Obs.Metrics snapshot document                       *)
(* ------------------------------------------------------------------ *)

(* The key sets below are a contract with [planarmon compare] and any
   external scraper: changing them requires bumping [metrics/v1]. *)
let test_metrics_schema () =
  let module M = Obs.Metrics in
  let r = M.create () in
  M.set_enabled ~registry:r true;
  let c = M.counter ~registry:r ~label_names:[ "verdict" ] "rt_counter" in
  let g = M.gauge ~registry:r ~stable:false "rt_gauge" in
  let h = M.histogram ~registry:r ~buckets:[ 1; 4 ] "rt_hist" in
  M.inc ~labels:[ "accept" ] c;
  M.set g 2.5;
  M.observe h 3;
  let j = Report.metrics_json ~registry:r () in
  check kt "envelope keys and types"
    [ ("schema", "string"); ("metrics", "list") ]
    (keys_and_tags j);
  check Alcotest.string "schema tag" "metrics/v1"
    (match field j "schema" with J.String s -> s | _ -> "?");
  (match Report.check_schema j with
  | Ok t -> check Alcotest.string "check_schema accepts it" "metrics/v1" t
  | Error e -> Alcotest.failf "metrics/v1 rejected by check_schema: %s" e);
  let fams = match field j "metrics" with J.List l -> l | _ -> [] in
  check ci "three families" 3 (List.length fams);
  List.iter
    (fun fam ->
      check kt "family key set"
        [
          ("name", "string");
          ("kind", "string");
          ("help", "string");
          ("stable", "bool");
          ("series", "list");
        ]
        (keys_and_tags fam))
    fams;
  let fam_named n =
    List.find (fun f -> field f "name" = J.String n) fams
  in
  let series f =
    match field f "series" with J.List (s :: _) -> s | _ -> Alcotest.fail "series"
  in
  check kt "counter series row"
    [ ("labels", "obj"); ("value", "int") ]
    (keys_and_tags (series (fam_named "rt_counter")));
  check kt "counter labels"
    [ ("verdict", "string") ]
    (keys_and_tags (field (series (fam_named "rt_counter")) "labels"));
  check kt "gauge series row"
    [ ("labels", "obj"); ("value", "float") ]
    (keys_and_tags (series (fam_named "rt_gauge")));
  check cb "host-side gauge carries stable=false" true
    (field (fam_named "rt_gauge") "stable" = J.Bool false);
  let hrow = series (fam_named "rt_hist") in
  check kt "histogram series row"
    [ ("labels", "obj"); ("buckets", "list"); ("sum", "int"); ("count", "int") ]
    (keys_and_tags hrow);
  (match field hrow "buckets" with
  | J.List buckets ->
      check ci "one row per finite bucket" 2 (List.length buckets);
      List.iter
        (fun b ->
          check kt "bucket row" [ ("le", "int"); ("count", "int") ]
            (keys_and_tags b))
        buckets;
      (* cumulative le semantics: the observation 3 is inside le=4 only *)
      check cb "bucket counts are cumulative" true
        (List.map
           (fun b -> (field b "le", field b "count"))
           buckets
        = [ (J.Int 1, J.Int 0); (J.Int 4, J.Int 1) ])
  | _ -> Alcotest.fail "buckets must be a list");
  check cb "count includes the +Inf bucket" true
    (field hrow "count" = J.Int 1)

(* ------------------------------------------------------------------ *)
(* Report.write: file vs the "-" stdout convention                     *)
(* ------------------------------------------------------------------ *)

let sample = J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Null; J.Bool true ]) ]

let test_write_file () =
  let path = Filename.temp_file "report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.write path sample;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check cb "file holds the rendering" true
        (String.trim s = J.to_string sample))

let test_write_dash_goes_to_stdout () =
  (* Swap stdout's fd for a temp file around the call; "-" must print the
     document there (and not create a file named "-"). *)
  let path = Filename.temp_file "report" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let saved = Unix.dup Unix.stdout in
      flush stdout;
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 saved Unix.stdout;
          Unix.close saved)
        (fun () ->
          Report.write "-" sample;
          flush stdout);
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check Alcotest.string "stdout got the document, newline-terminated"
        (J.to_string sample ^ "\n")
        s;
      check cb "no file named -" false (Sys.file_exists "-"))

(* ------------------------------------------------------------------ *)
(* Checkpoint container: round trip, atomicity, refusal modes          *)
(* ------------------------------------------------------------------ *)

(* Capture a real snapshot by checkpointing a short Stage I run. *)
let capture_snapshot g ~eps ~seed =
  let store = ref None in
  let ck =
    {
      PT.every = 1;
      load = (fun () -> None);
      save = (fun s -> if !store = None then store := Some s);
    }
  in
  ignore (PT.run ~checkpoint:ck g ~eps ~seed);
  match !store with
  | Some s -> s
  | None -> Alcotest.fail "run produced no checkpoint"

let with_temp f =
  let path = Filename.temp_file "ck" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_file_roundtrip () =
  let g = Generators.grid 16 16 in
  let eps = 0.1 and seed = 7 in
  let snap = capture_snapshot g ~eps ~seed in
  let fp =
    Report.Checkpoint.fingerprint g ~eps ~seed ~alpha:3 ~faults:None
  in
  with_temp (fun path ->
      Sys.remove path;
      check cb "missing file loads as None" true
        (Report.Checkpoint.load path ~fingerprint:fp = None);
      Report.Checkpoint.save path ~fingerprint:fp snap;
      match Report.Checkpoint.load path ~fingerprint:fp with
      | None -> Alcotest.fail "saved checkpoint did not load"
      | Some s ->
          check ci "phase preserved" snap.PT.ck_phase s.PT.ck_phase;
          check ci "nominal rounds preserved" snap.PT.ck_nominal_rounds
            s.PT.ck_nominal_rounds;
          check ci "stats rounds preserved"
            snap.PT.ck_stats.Congest.Stats.rounds
            s.PT.ck_stats.Congest.Stats.rounds;
          check cb "nodes deep-copied, equal content" true
            (snap.PT.ck_nodes = s.PT.ck_nodes
            && not (snap.PT.ck_nodes == s.PT.ck_nodes)))

let test_checkpoint_file_refusals () =
  let g = Generators.grid 16 16 in
  let eps = 0.1 and seed = 7 in
  let snap = capture_snapshot g ~eps ~seed in
  let fp =
    Report.Checkpoint.fingerprint g ~eps ~seed ~alpha:3 ~faults:None
  in
  let fails f = match f () with
    | exception Failure _ -> true
    | _ -> false
  in
  with_temp (fun path ->
      Report.Checkpoint.save path ~fingerprint:fp snap;
      (* Fingerprint mismatch: other eps, other graph, other faults. *)
      let fp_eps =
        Report.Checkpoint.fingerprint g ~eps:0.2 ~seed ~alpha:3 ~faults:None
      in
      check cb "eps mismatch refused" true
        (fails (fun () -> Report.Checkpoint.load path ~fingerprint:fp_eps));
      let faults = Some (Congest.Faults.make ~drop:0.1 ()) in
      let fp_faults =
        Report.Checkpoint.fingerprint g ~eps ~seed ~alpha:3 ~faults
      in
      check cb "faults mismatch refused" true
        (fails (fun () -> Report.Checkpoint.load path ~fingerprint:fp_faults));
      (* Corruption: flip a byte in the body. *)
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let bad = Bytes.of_string raw in
      let i = Bytes.length bad - 5 in
      Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc bad;
      close_out oc;
      check cb "checksum failure refused" true
        (fails (fun () -> Report.Checkpoint.load path ~fingerprint:fp));
      (* Not a checkpoint at all. *)
      let oc = open_out_bin path in
      output_string oc "not a checkpoint";
      close_out oc;
      check cb "bad magic refused" true
        (fails (fun () -> Report.Checkpoint.load path ~fingerprint:fp));
      (* Truncated below the header. *)
      let oc = open_out_bin path in
      output_string oc "PLNR";
      close_out oc;
      check cb "truncated refused" true
        (fails (fun () -> Report.Checkpoint.load path ~fingerprint:fp)))

(* ------------------------------------------------------------------ *)
(* heartbeat/v1: the live status document                              *)
(* ------------------------------------------------------------------ *)

(* [planarmon attach] and any supervisor tailing the status file parse
   these keys; the set and order are locked like the stats schemas. *)
let heartbeat_keys ~verdict ~checkpoint ~metrics =
  [
    ("schema", "string");
    ("seq", "int");
    ("state", "string");
    ("verdict", verdict);
    ("run_id", "string");
    ("fingerprint", "string");
    ("property", "string");
    ("phase", "string");
    ("phases_done", "int");
    ("phases_total", "int");
    ("rounds", "int");
    ("charged_rounds", "int");
    ("messages", "int");
    ("total_bits", "int");
    ("checkpoint", checkpoint);
    ("wall_s", "float");
    ("gc", "obj");
    ("metrics", metrics);
  ]

let parse_file path =
  match Report.Json_parse.of_file path with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s does not parse: %s" path e

let test_heartbeat_schema () =
  let path = Filename.temp_file "hb" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let hb =
        Obs.Heartbeat.create ~path ~run_id:"r1" ~fingerprint:"fp"
          ~property:"planarity" ()
      in
      Obs.Heartbeat.attach hb
        ~sample:(fun () ->
          {
            Obs.Heartbeat.rounds = 7;
            charged_rounds = 9;
            messages = 11;
            total_bits = 13;
            phases_done = 2;
            phases_total = 5;
          });
      Obs.Heartbeat.publish hb;
      let j = parse_file path in
      check kt "running key set (verdict/checkpoint null, metrics off)"
        (heartbeat_keys ~verdict:"null" ~checkpoint:"null" ~metrics:"null")
        (keys_and_tags j);
      (match Report.check_schema j with
      | Ok t -> check Alcotest.string "check_schema accepts it" "heartbeat/v1" t
      | Error e -> Alcotest.failf "heartbeat/v1 rejected by check_schema: %s" e);
      check kt "gc sub-object"
        [
          ("minor_words", "float");
          ("major_collections", "int");
          ("heap_words", "int");
        ]
        (keys_and_tags (field j "gc"));
      check cb "state running" true (field j "state" = J.String "running");
      check ci "sampled rounds" 7
        (match field j "rounds" with J.Int r -> r | _ -> -1);
      (* Finishing republishes in place: verdict and checkpoint become
         strings, nothing else about the shape moves. *)
      Obs.Heartbeat.set_checkpoint hb "run.ck";
      Obs.Heartbeat.finish hb ~verdict:"accept";
      let j = parse_file path in
      check kt "done key set"
        (heartbeat_keys ~verdict:"string" ~checkpoint:"string" ~metrics:"null")
        (keys_and_tags j);
      check cb "state done" true (field j "state" = J.String "done");
      check cb "verdict recorded" true (field j "verdict" = J.String "accept");
      check ci "seq advanced" 2
        (match field j "seq" with J.Int s -> s | _ -> -1);
      (* finish is terminal: further publishes must not resurrect it. *)
      Obs.Heartbeat.publish hb;
      let j = parse_file path in
      check ci "seq frozen after finish" 2
        (match field j "seq" with J.Int s -> s | _ -> -1))

let test_heartbeat_metrics_projection () =
  (* With the global registry enabled the [metrics] member is the flat
     stable projection: counters by name, histograms flattened to
     _sum/_count, each entry {name, value}. *)
  let module M = Obs.Metrics in
  let path = Filename.temp_file "hb" ".json" in
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled false;
      M.reset ();
      Sys.remove path)
    (fun () ->
      M.set_enabled true;
      M.reset ();
      let c = M.counter "hb_test_counter" in
      M.inc ~by:3 c;
      let hb =
        Obs.Heartbeat.create ~path ~run_id:"r2" ~fingerprint:"fp"
          ~property:"planarity" ()
      in
      Obs.Heartbeat.publish hb;
      let j = parse_file path in
      match field j "metrics" with
      | J.List entries ->
          check cb "projection non-empty" true (entries <> []);
          List.iter
            (fun e ->
              match keys_and_tags e with
              | [ ("name", "string"); ("value", ("int" | "float")) ] -> ()
              | other ->
                  Alcotest.failf "unexpected entry shape: %s"
                    (String.concat ";"
                       (List.map (fun (k, t) -> k ^ ":" ^ t) other)))
            entries;
          check cb "our counter present" true
            (List.exists
               (fun e -> field e "name" = J.String "hb_test_counter")
               entries)
      | other -> Alcotest.failf "metrics is %s, expected list" (tag other))

(* ------------------------------------------------------------------ *)
(* runs.ledger/v1: the provenance ledger record                        *)
(* ------------------------------------------------------------------ *)

let sample_record =
  {
    Report.Ledger.ts = 1700000000.5;
    tool = "planartest";
    run_id = "planartest:g.txt:seed=0";
    fingerprint = "graph=abc eps=0x1p-3 seed=0 alpha=3 faults=none";
    property = "planarity";
    config = [ ("eps", "0.2"); ("seed", "0") ];
    verdict = "accept";
    digest = "d41d8cd98f00b204e9800998ecf8427e";
    rounds = 10;
    nominal_rounds = 12;
    messages = 5;
    total_bits = 40;
    wall_s = 0.25;
    host = "testhost";
  }

let test_ledger_schema () =
  let j = Report.Ledger.to_json sample_record in
  check kt "record key set, order and types"
    [
      ("schema", "string");
      ("ts", "float");
      ("tool", "string");
      ("run_id", "string");
      ("fingerprint", "string");
      ("property", "string");
      ("config", "obj");
      ("verdict", "string");
      ("digest", "string");
      ("rounds", "int");
      ("nominal_rounds", "int");
      ("messages", "int");
      ("total_bits", "int");
      ("wall_s", "float");
      ("host", "string");
    ]
    (keys_and_tags j);
  (match Report.check_schema j with
  | Ok t -> check Alcotest.string "check_schema accepts it" "runs.ledger/v1" t
  | Error e -> Alcotest.failf "runs.ledger/v1 rejected by check_schema: %s" e);
  (match Report.Ledger.of_json j with
  | Ok r -> check cb "of_json round-trips to_json" true (r = sample_record)
  | Error e -> Alcotest.failf "of_json rejects its own to_json: %s" e);
  (* The digest is a pure function of the simulated outcome. *)
  let d ~rounds =
    Report.Ledger.digest_core ~property:"planarity" ~verdict:"accept" ~rounds
      ~nominal_rounds:12 ~messages:5 ~total_bits:40 ~fast_forwarded_rounds:2
      ~dropped:0 ~duplicated:0 ~delayed:0 ~crashed_nodes:0
  in
  check Alcotest.string "digest_core deterministic" (d ~rounds:10)
    (d ~rounds:10);
  check cb "digest_core sensitive to the core" true
    (d ~rounds:10 <> d ~rounds:11)

let test_ledger_append_load_torn () =
  let path = Filename.temp_file "runs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.Ledger.append ~path sample_record;
      Report.Ledger.append ~path { sample_record with rounds = 11 };
      let records, skipped = Report.Ledger.load path in
      check ci "two records back" 2 (List.length records);
      check ci "nothing skipped" 0 skipped;
      check cb "order preserved" true
        ((List.nth records 1).Report.Ledger.rounds = 11);
      (* A crash mid-append tears at most the final line; the reader
         skips and counts it without losing the earlier records. *)
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 path
      in
      output_string oc {|{"schema":"runs.ledg|};
      close_out oc;
      let records, skipped = Report.Ledger.load path in
      check ci "intact records survive the torn tail" 2 (List.length records);
      check ci "torn line counted" 1 skipped;
      (* Wrong-schema lines are skipped the same way. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\n{\"schema\":\"metrics/v1\"}\n";
      close_out oc;
      let records, skipped = Report.Ledger.load path in
      check ci "still two records" 2 (List.length records);
      check ci "two lines skipped now" 2 skipped;
      (* Missing file is empty, not an error. *)
      let records, skipped = Report.Ledger.load "/nonexistent/runs.jsonl" in
      check ci "missing file: no records" 0 (List.length records);
      check ci "missing file: no skips" 0 skipped)

let () =
  Alcotest.run "report"
    [
      ( "schema",
        [
          Alcotest.test_case "planartest.stats/v1" `Quick test_stats_schema;
          Alcotest.test_case "stats with telemetry" `Quick
            test_stats_schema_with_telemetry;
          Alcotest.test_case "rejection rows" `Quick
            test_stats_rejections_rows;
          Alcotest.test_case "planartest.stats/v2" `Quick test_stats_schema_v2;
          Alcotest.test_case "v2 degraded verdict" `Quick
            test_stats_schema_v2_degraded;
          Alcotest.test_case "v1 unchanged without faults" `Quick
            test_stats_v1_unchanged_without_faults;
          Alcotest.test_case "planartest.stats/v3" `Quick test_stats_schema_v3;
          Alcotest.test_case "harness_stats property member" `Quick
            test_harness_stats_property_member;
          Alcotest.test_case "harness_stats v2/v3 tagging" `Quick
            test_harness_stats_v2_v3_tagging;
          Alcotest.test_case "planarity keys unchanged by harness" `Quick
            test_planarity_keys_unchanged_by_harness;
          Alcotest.test_case "v2 unchanged without host" `Quick
            test_stats_v2_unchanged_without_host;
          Alcotest.test_case "check_schema rejects unknown versions" `Quick
            test_check_schema;
          Alcotest.test_case "bench.planarity/v1" `Quick test_bench_schema;
          Alcotest.test_case "metrics/v1" `Quick test_metrics_schema;
          Alcotest.test_case "heartbeat/v1" `Quick test_heartbeat_schema;
          Alcotest.test_case "heartbeat metrics projection" `Quick
            test_heartbeat_metrics_projection;
          Alcotest.test_case "runs.ledger/v1" `Quick test_ledger_schema;
          Alcotest.test_case "ledger append/load and torn tail" `Quick
            test_ledger_append_load_torn;
        ] );
      ( "write",
        [
          Alcotest.test_case "to file" `Quick test_write_file;
          Alcotest.test_case "dash writes stdout" `Quick
            test_write_dash_goes_to_stdout;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "file round trip" `Quick
            test_checkpoint_file_roundtrip;
          Alcotest.test_case "refusal modes" `Quick
            test_checkpoint_file_refusals;
        ] );
    ]
