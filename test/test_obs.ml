(* Tests for the observability layer: OpenMetrics exposition details
   that external scrapers depend on (escaping, histogram bucket
   semantics) and the determinism contract for stable metrics (the
   stable projection must not depend on [?domains] or fast-forward). *)

module M = Obs.Metrics
module PT = Tester.Planarity_tester
open Graphlib

let check = Alcotest.check
let ci = Alcotest.int
let cs = Alcotest.string
let cb = Alcotest.bool

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Each test gets a private registry so the cases cannot interfere with
   each other (or with the instrumented libraries' default registry). *)
let fresh () =
  let r = M.create () in
  M.set_enabled ~registry:r true;
  r

(* ------------------------------------------------------------------ *)
(* OpenMetrics escaping                                                *)
(* ------------------------------------------------------------------ *)

let test_escape_label_value () =
  check cs "backslash" {|a\\b|} (M.escape_label_value {|a\b|});
  check cs "double quote" {|a\"b|} (M.escape_label_value {|a"b|});
  check cs "newline" {|a\nb|} (M.escape_label_value "a\nb");
  check cs "all three, in order" {|\\ \" \n|}
    (M.escape_label_value "\\ \" \n");
  check cs "clean strings pass through" "grid_42" (M.escape_label_value "grid_42")

let test_expose_escapes_labels () =
  let r = fresh () in
  let c =
    M.counter ~registry:r ~label_names:[ "path" ] ~help:"with \\ and\nnewline"
      "esc_test"
  in
  M.inc ~labels:[ "a\"b\\c\nd" ] c;
  let text = M.expose ~registry:r () in
  check cb "label value escaped in exposition" true
    (contains text {|esc_test_total{path="a\"b\\c\nd"} 1|});
  (* HELP text escapes backslash and newline but NOT double quotes. *)
  check cb "help escaped" true
    (contains text {|# HELP esc_test with \\ and\nnewline|});
  check cb "exposition is EOF-terminated" true
    (let suffix = "# EOF\n" in
     String.length text >= String.length suffix
     && String.sub text (String.length text - String.length suffix)
          (String.length suffix)
        = suffix)

(* ------------------------------------------------------------------ *)
(* Histogram bucket boundary semantics                                 *)
(* ------------------------------------------------------------------ *)

let test_le_inclusive () =
  let r = fresh () in
  let h = M.histogram ~registry:r ~buckets:[ 10; 20 ] "le_test" in
  (* An observation exactly at a bound lands in that bucket ([v <= le]),
     one past it lands in the next, one past the last bound is +Inf-only. *)
  M.observe h 10;
  M.observe h 11;
  M.observe h 20;
  M.observe h 21;
  match M.snapshot ~registry:r () with
  | [ { M.series = [ { M.value = M.Histogram_v hs; _ } ]; _ } ] ->
      check ci "le=10 holds exactly the v<=10 observation" 1 hs.M.cumulative.(0);
      check ci "le=20 cumulates 10, 11 and 20" 3 hs.M.cumulative.(1);
      check ci "total counts the +Inf overflow too" 4 hs.M.total;
      check ci "sum is exact" (10 + 11 + 20 + 21) hs.M.sum
  | _ -> Alcotest.fail "expected one family with one series"

let test_le_exposition_cumulative () =
  let r = fresh () in
  let h = M.histogram ~registry:r ~buckets:[ 5 ] "expo_h" in
  M.observe h 5;
  M.observe h 6;
  let text = M.expose ~registry:r () in
  check cb "boundary observation inside le=5" true
    (contains text {|expo_h_bucket{le="5"} 1|});
  check cb "+Inf bucket equals count" true
    (contains text {|expo_h_bucket{le="+Inf"} 2|});
  check cb "_count line" true (contains text "expo_h_count 2");
  check cb "_sum line" true (contains text "expo_h_sum 11")

(* ------------------------------------------------------------------ *)
(* Registration guard rails                                            *)
(* ------------------------------------------------------------------ *)

let test_registration_guards () =
  let r = fresh () in
  (match M.counter ~registry:r "bad_total" with
  | _ -> Alcotest.fail "counter name ending in _total accepted"
  | exception Invalid_argument _ -> ());
  (match M.histogram ~registry:r ~buckets:[ 3; 3 ] "bad_buckets" with
  | _ -> Alcotest.fail "non-increasing buckets accepted"
  | exception Invalid_argument _ -> ());
  let _ = M.counter ~registry:r "dup" in
  match M.gauge ~registry:r "dup" with
  | _ -> Alcotest.fail "kind clash on re-registration accepted"
  | exception Invalid_argument _ -> ()

let test_label_cardinality_cap () =
  let r = fresh () in
  let c = M.counter ~registry:r ~label_names:[ "k" ] ~max_series:2 "capped" in
  M.inc ~labels:[ "a" ] c;
  M.inc ~labels:[ "b" ] c;
  M.inc ~labels:[ "c" ] c;
  (* third label routed to _overflow *)
  M.inc ~labels:[ "d" ] c;
  check ci "registry-wide overflow count" 2 (M.overflow_count ~registry:r ());
  match M.snapshot ~registry:r () with
  | [ { M.overflowed; series; _ } ] ->
      check cb "family flagged as overflowed" true overflowed;
      let labels =
        List.map (fun s -> List.assoc "k" s.M.labels) series
        |> List.sort compare
      in
      check Alcotest.(list string) "overflow series absorbs the excess"
        [ "_overflow"; "a"; "b" ] labels;
      let ov =
        List.find (fun s -> List.assoc "k" s.M.labels = "_overflow") series
      in
      check cb "both rejected increments landed there" true
        (match ov.M.value with M.Counter_v 2 -> true | _ -> false)
  | _ -> Alcotest.fail "expected one family"

(* ------------------------------------------------------------------ *)
(* Cross-domain / fast-forward determinism of the stable projection    *)
(* ------------------------------------------------------------------ *)

let stable_exposition ~domains ~fast_forward =
  (* The engine and tester record into the default registry, so this
     test briefly enables it; [Fun.protect] restores the disabled
     state even if the run throws. *)
  Fun.protect
    ~finally:(fun () -> M.set_enabled false)
    (fun () ->
      M.set_enabled true;
      M.reset ();
      let g = Generators.grid 12 12 in
      let r = PT.run ~seed:5 ~domains ~fast_forward g ~eps:0.25 in
      (match r.PT.verdict with
      | PT.Accept -> ()
      | _ -> Alcotest.fail "grid run must accept");
      M.expose ~stable_only:true ())

let test_stable_projection_invariant () =
  let base = stable_exposition ~domains:1 ~fast_forward:true in
  check cb "baseline run actually recorded something" true
    (contains base "congest_rounds");
  check cb "host-side families excluded from the stable projection" false
    (contains base "congest_run_wall_us");
  check cb "fast-forward accounting excluded (ff-dependent by definition)"
    false
    (contains base "congest_fast_forwarded_rounds");
  let d4 = stable_exposition ~domains:4 ~fast_forward:true in
  check cs "domains=1 vs domains=4: byte-identical" base d4;
  let no_ff = stable_exposition ~domains:1 ~fast_forward:false in
  check cs "ff on vs off: byte-identical" base no_ff

let test_disabled_records_nothing () =
  let r = M.create () in
  (* never enabled *)
  let c = M.counter ~registry:r "noop" in
  M.inc c;
  M.inc ~by:41 c;
  M.set_enabled ~registry:r true;
  match M.snapshot ~registry:r () with
  | [ { M.series = [ { M.value = M.Counter_v 0; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "disabled registry must stay at zero"

(* ------------------------------------------------------------------ *)
(* Fsatomic: the shared atomic-publication helpers                     *)
(* ------------------------------------------------------------------ *)

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_fsatomic_write () =
  let path = Filename.temp_file "fsat" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Fsatomic.write path "first";
      check cs "contents written" "first" (slurp path);
      (* Replacement is whole-document: the reader never sees a mix. *)
      Obs.Fsatomic.write path "second document, longer";
      check cs "replaced in place" "second document, longer" (slurp path);
      (* A failed publication must not leave temp litter next to the
         target. *)
      let dir = Filename.dirname path in
      let before =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".tmp")
      in
      (try
         Obs.Fsatomic.with_channel path (fun _ -> failwith "midway")
       with Failure _ -> ());
      let after =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".tmp")
      in
      check ci "no temp file left behind" (List.length before)
        (List.length after);
      check cs "target untouched by the failed write"
        "second document, longer" (slurp path))

let test_fsatomic_append_line () =
  let path = Filename.temp_file "fsat" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      (* append creates the file *)
      Obs.Fsatomic.append_line path "one";
      Obs.Fsatomic.append_line path "two";
      check cs "one line per append, newline-terminated" "one\ntwo\n"
        (slurp path))

(* ------------------------------------------------------------------ *)
(* Heartbeat: cadence, bases, terminal finish                          *)
(* ------------------------------------------------------------------ *)

let mk_progress ?(rounds = 0) ?(charged = 0) () =
  {
    Obs.Heartbeat.rounds;
    charged_rounds = charged;
    messages = 1;
    total_bits = 8;
    phases_done = 1;
    phases_total = 4;
  }

let test_heartbeat_tick_cadence () =
  let published = ref 0 in
  (* No [?path]: publication only fires the hook (planartest --progress
     without --heartbeat).  every_secs is huge so only the round cadence
     triggers. *)
  let hb =
    Obs.Heartbeat.create ~every_rounds:100 ~every_secs:1e9
      ~on_publish:(fun _ -> incr published)
      ~run_id:"r" ~fingerprint:"f" ~property:"p" ()
  in
  Obs.Heartbeat.attach hb ~sample:(fun () -> mk_progress ());
  for _ = 1 to 99 do
    Obs.Heartbeat.tick hb ~rounds:1
  done;
  check ci "below the cadence: no publication" 0 !published;
  Obs.Heartbeat.tick hb ~rounds:1;
  check ci "100th round publishes" 1 !published;
  (* A fast-forwarded span ticks once with the whole span length. *)
  Obs.Heartbeat.tick hb ~rounds:250;
  check ci "one span over the cadence publishes once" 2 !published;
  Obs.Heartbeat.publish hb;
  check ci "explicit publish always fires" 3 !published

let test_heartbeat_bases_and_ticks () =
  (* attach on resume: the checkpointed totals become the floor, live
     ticks extend them even while the coarse sample lags. *)
  let hb =
    Obs.Heartbeat.create ~run_id:"r" ~fingerprint:"f" ~property:"p" ()
  in
  Obs.Heartbeat.attach hb
    ~sample:(fun () -> mk_progress ~rounds:500 ~charged:600 ());
  Obs.Heartbeat.tick hb ~rounds:7;
  let p = Obs.Heartbeat.current hb in
  check ci "rounds = base + live ticks" 507 p.Obs.Heartbeat.rounds;
  check ci "charged_rounds too" 607 p.Obs.Heartbeat.charged_rounds;
  check ci "sampled fields pass through" 1 p.Obs.Heartbeat.messages

let test_heartbeat_finish_terminal () =
  let published = ref 0 in
  let hb =
    Obs.Heartbeat.create
      ~on_publish:(fun _ -> incr published)
      ~run_id:"r" ~fingerprint:"f" ~property:"p" ()
  in
  Obs.Heartbeat.attach hb ~sample:(fun () -> mk_progress ());
  Obs.Heartbeat.finish hb ~verdict:"accept";
  check ci "finish publishes" 1 !published;
  Obs.Heartbeat.finish hb ~verdict:"reject";
  Obs.Heartbeat.publish hb;
  Obs.Heartbeat.tick hb ~rounds:1_000_000;
  check ci "finish is terminal for every entry point" 1 !published

let test_heartbeat_bad_cadence () =
  match
    Obs.Heartbeat.create ~every_rounds:0 ~run_id:"r" ~fingerprint:"f"
      ~property:"p" ()
  with
  | _ -> Alcotest.fail "every_rounds = 0 accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "obs"
    [
      ( "openmetrics",
        [
          Alcotest.test_case "label-value escaping" `Quick
            test_escape_label_value;
          Alcotest.test_case "exposition escapes labels and help" `Quick
            test_expose_escapes_labels;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "le bounds are inclusive" `Quick test_le_inclusive;
          Alcotest.test_case "cumulative buckets in exposition" `Quick
            test_le_exposition_cumulative;
        ] );
      ( "registry",
        [
          Alcotest.test_case "registration guard rails" `Quick
            test_registration_guards;
          Alcotest.test_case "label cardinality cap" `Quick
            test_label_cardinality_cap;
          Alcotest.test_case "disabled registry records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "stable projection: domains and ff invariant"
            `Quick test_stable_projection_invariant;
        ] );
      ( "fsatomic",
        [
          Alcotest.test_case "atomic write replaces whole documents" `Quick
            test_fsatomic_write;
          Alcotest.test_case "append_line is one line per call" `Quick
            test_fsatomic_append_line;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "round cadence" `Quick test_heartbeat_tick_cadence;
          Alcotest.test_case "resume bases + live ticks" `Quick
            test_heartbeat_bases_and_ticks;
          Alcotest.test_case "finish is terminal" `Quick
            test_heartbeat_finish_terminal;
          Alcotest.test_case "invalid cadence rejected" `Quick
            test_heartbeat_bad_cadence;
        ] );
    ]
