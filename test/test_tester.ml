open Graphlib

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let q = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Labels and violations (Definition 7, Claims 8-10)                   *)
(* ------------------------------------------------------------------ *)

let test_compare_label () =
  let c = Tester.Violation.compare_label in
  check cb "prefix smaller" true (c [ 1 ] [ 1; 2 ] < 0);
  check cb "lex" true (c [ 1; 3 ] [ 2 ] < 0);
  check cb "equal" true (c [ 2; 1 ] [ 2; 1 ] = 0);
  check cb "root smallest" true (c [] [ 1 ] < 0)

let test_labels_on_star () =
  let g = Generators.star 4 in
  let tree = Traversal.bfs g 0 in
  let rot = Planarity.Rotation.of_adjacency_order g in
  let lab = Tester.Violation.labels g tree rot in
  check (Alcotest.list ci) "root label" [] lab.(0);
  let leaf_labels = List.sort compare [ lab.(1); lab.(2); lab.(3) ] in
  check
    (Alcotest.list (Alcotest.list ci))
    "leaves ranked" [ [ 1 ]; [ 2 ]; [ 3 ] ] leaf_labels

let test_labels_depth () =
  let g = Generators.path 5 in
  let tree = Traversal.bfs g 0 in
  let rot = Planarity.Rotation.of_adjacency_order g in
  let lab = Tester.Violation.labels g tree rot in
  check ci "label length = depth" 4 (List.length lab.(4))

let test_intersects () =
  let i = Tester.Violation.intersects in
  check cb "interleaved" true (i ([ 1 ], [ 3 ]) ([ 2 ], [ 4 ]));
  check cb "nested" false (i ([ 1 ], [ 4 ]) ([ 2 ], [ 3 ]));
  check cb "disjoint" false (i ([ 1 ], [ 2 ]) ([ 3 ], [ 4 ]));
  check cb "shared low endpoint" false (i ([ 1 ], [ 3 ]) ([ 1 ], [ 4 ]));
  check cb "shared high endpoint" false (i ([ 1 ], [ 3 ]) ([ 2 ], [ 3 ]));
  check cb "order-insensitive" true (i ([ 2 ], [ 4 ]) ([ 1 ], [ 3 ]));
  check cb "unsorted pairs accepted" true (i ([ 3 ], [ 1 ]) ([ 4 ], [ 2 ]))

let test_non_tree_edges () =
  let g = Generators.cycle 6 in
  let tree = Traversal.bfs g 0 in
  check ci "one non-tree edge" 1
    (List.length (Tester.Violation.non_tree_edges g tree))

let test_claim10_planar_no_violations () =
  List.iter
    (fun g -> check ci "planar: zero violating" 0 (Tester.Violation.count_violating g))
    [
      Generators.grid 7 9;
      Generators.apollonian (Random.State.make [| 1 |]) 150;
      Generators.cycle 17;
      Generators.random_tree (Random.State.make [| 2 |]) 60;
      Generators.complete 4;
      (let g = Generators.complete 5 in fst (Graph.remove_edges g (fun e -> e = 0)));
    ]

let test_violations_on_far_graphs () =
  List.iter
    (fun (g, at_least) ->
      check cb "many violating edges" true
        (List.length
           (let tree = Traversal.bfs g 0 in
            let rot, _ = Planarity.Lr.embed_or_adjacency g in
            Tester.Violation.violating_edges g tree rot)
        >= at_least))
    [
      (Generators.complete 5, 2);
      (Generators.complete 6, 4);
      (Generators.complete_bipartite 3 3, 2);
      (Generators.far_from_planar (Random.State.make [| 3 |]) ~n:60 ~eps:0.2, 12);
    ]

let test_claim10_qcheck =
  QCheck.Test.make
    ~name:"claim 10: planar graphs have no violating edges (corner keys)"
    ~count:150
    QCheck.(pair (int_range 4 70) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g =
        if seed mod 3 = 0 then Generators.apollonian rng n
        else
          Generators.random_planar rng ~n
            ~m:(max (n - 1) (Random.State.int rng ((3 * n) - 6)))
      in
      (not (Traversal.is_connected g))
      || Tester.Violation.count_violating g = 0)

let test_corollary9_qcheck =
  QCheck.Test.make
    ~name:"corollary 9: violating edges at least the certified distance"
    ~count:40
    QCheck.(pair (int_range 20 80) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.far_from_planar rng ~n ~eps:0.2 in
      Tester.Violation.count_violating g
      >= Planarity.Distance.euler_lower_bound g)

let test_scan_neighbor_rotation () =
  (* rotation [parent; a; b; c] with children {b}: a gets corner (0, 1),
     b rank 1, c corner (1, 1). *)
  let out = ref [] in
  Tester.Violation.scan_neighbor_rotation ~rotation:[| 9; 4; 5; 6 |] ~parent:9
    ~children:[ 5 ] (fun w rank t -> out := (w, rank, t) :: !out);
  check
    (Alcotest.list (Alcotest.triple ci ci ci))
    "scan order"
    [ (4, 0, 1); (5, 1, 0); (6, 1, 1) ]
    (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Stage II and the full tester                                        *)
(* ------------------------------------------------------------------ *)

let test_full_tester_accepts_planar () =
  List.iter
    (fun g ->
      check cb "planar accepted" true
        (Tester.Planarity_tester.accepts g ~eps:0.3 ~seed:1))
    [
      Generators.grid 9 9;
      Generators.apollonian (Random.State.make [| 4 |]) 180;
      Generators.random_tree (Random.State.make [| 5 |]) 120;
      Generators.cycle 50;
    ]

let test_full_tester_rejects_far () =
  List.iter
    (fun g ->
      check cb "far graph rejected" true
        (not (Tester.Planarity_tester.accepts g ~eps:0.15 ~seed:1)))
    [
      Generators.far_from_planar (Random.State.make [| 6 |]) ~n:150 ~eps:0.25;
      Generators.complete_bipartite 3 3;
      Generators.complete 6;
    ]

(* ------------------------------------------------------------------ *)
(* Engine-parameter invariance (PR 2 regression)                       *)
(* ------------------------------------------------------------------ *)

(* Everything observable about a run except the engine-internal state
   handle: verdict (hence the accept/reject transcript), all round and
   bandwidth accounting, and both stages' traces. *)
let report_fp (r : Tester.Planarity_tester.report) =
  ( r.Tester.Planarity_tester.verdict,
    r.Tester.Planarity_tester.rounds,
    r.Tester.Planarity_tester.nominal_rounds,
    r.Tester.Planarity_tester.messages,
    r.Tester.Planarity_tester.total_bits,
    r.Tester.Planarity_tester.fast_forwarded_rounds,
    Option.map
      (fun (s1 : Partition.Stage1.result) ->
        (s1.Partition.Stage1.rejected, s1.Partition.Stage1.phases,
         s1.Partition.Stage1.rounds, s1.Partition.Stage1.nominal_rounds))
      r.Tester.Planarity_tester.stage1,
    r.Tester.Planarity_tester.stage2 )

(* The tester's report must be identical for every engine domain count
   and with fast-forwarding on or off — the paper-level contract behind
   the parallel engine (see Congest.Engine). *)
let assert_engine_invariant name g ~eps ~expect_accept =
  let run ~domains ~fast_forward =
    Tester.Planarity_tester.run ~seed:2 ~domains ~fast_forward g ~eps
  in
  let serial = run ~domains:1 ~fast_forward:true in
  (match serial.Tester.Planarity_tester.verdict with
  | Tester.Planarity_tester.Accept ->
      check cb (name ^ ": accepts") true expect_accept
  | Tester.Planarity_tester.Reject _ ->
      check cb (name ^ ": rejects") false expect_accept
  | Tester.Planarity_tester.Degraded msg ->
      Alcotest.fail (name ^ ": degraded without faults: " ^ msg));
  let fp = report_fp serial in
  List.iter
    (fun d ->
      check cb
        (Printf.sprintf "%s: domains=%d report identical" name d)
        true
        (report_fp (run ~domains:d ~fast_forward:true) = fp))
    [ 2; 4 ];
  (* [fast_forwarded_rounds] is the one field allowed to differ: it
     records whether the shortcut was taken, and with the optimisation
     off it is 0 by construction. *)
  let zero_ff (v, r, nr, m, b, _ff, s1, s2) = (v, r, nr, m, b, 0, s1, s2) in
  let off = run ~domains:1 ~fast_forward:false in
  check ci (name ^ ": ff off skips nothing") 0
    off.Tester.Planarity_tester.fast_forwarded_rounds;
  check cb (name ^ ": fast-forward off report identical") true
    (zero_ff (report_fp off) = zero_ff fp)

let test_domains_invariant_apollonian () =
  assert_engine_invariant "apollonian"
    (Generators.apollonian (Random.State.make [| 5 |]) 96)
    ~eps:0.25 ~expect_accept:true

let test_domains_invariant_grid () =
  assert_engine_invariant "grid" (Generators.grid 8 8) ~eps:0.25
    ~expect_accept:true

let test_domains_invariant_far () =
  assert_engine_invariant "far-from-planar"
    (Generators.far_from_planar (Random.State.make [| 6 |]) ~n:80 ~eps:0.25)
    ~eps:0.15 ~expect_accept:false

let test_tester_k5_euler_reject () =
  (* K5 merges into a single part with m = 10 > 3n - 6 = 9: the Euler check
     inside stage II must fire. *)
  let r = Tester.Planarity_tester.run (Generators.complete 5) ~eps:0.1 in
  match r.Tester.Planarity_tester.verdict with
  | Tester.Planarity_tester.Accept -> Alcotest.fail "K5 accepted"
  | Tester.Planarity_tester.Reject _ -> ()
  | Tester.Planarity_tester.Degraded msg ->
      Alcotest.fail ("K5 degraded without faults: " ^ msg)

let test_tester_report_fields () =
  let g = Generators.grid 6 6 in
  let r = Tester.Planarity_tester.run g ~eps:0.4 in
  check cb "rounds positive" true (r.Tester.Planarity_tester.rounds > 0);
  check cb "nominal at least simulated-ish" true
    (r.Tester.Planarity_tester.nominal_rounds > 0);
  check cb "stage2 ran" true (r.Tester.Planarity_tester.stage2 <> None);
  match r.Tester.Planarity_tester.stage2 with
  | Some s2 ->
      check cb "sample target positive" true (s2.Tester.Stage2.sample_target > 0);
      List.iter
        (fun (p : Tester.Stage2.part_info) ->
          check cb "part sizes consistent" true
            (p.Tester.Stage2.m_edges >= p.Tester.Stage2.n_nodes - 1);
          check cb "non-tree consistent" true
            (p.Tester.Stage2.non_tree
            = p.Tester.Stage2.m_edges - (p.Tester.Stage2.n_nodes - 1));
          check cb "planar parts embed" true p.Tester.Stage2.embedding_planar)
        s2.Tester.Stage2.parts
  | None -> ()

let test_stage2_part_counts () =
  let g = Generators.apollonian (Random.State.make [| 7 |]) 100 in
  let r = Tester.Planarity_tester.run g ~eps:0.4 in
  match r.Tester.Planarity_tester.stage2 with
  | Some s2 ->
      let total_nodes =
        List.fold_left
          (fun acc (p : Tester.Stage2.part_info) ->
            acc + p.Tester.Stage2.n_nodes)
          0 s2.Tester.Stage2.parts
      in
      check ci "nodes partitioned" 100 total_nodes;
      let total_edges =
        List.fold_left
          (fun acc (p : Tester.Stage2.part_info) ->
            acc + p.Tester.Stage2.m_edges)
          0 s2.Tester.Stage2.parts
      in
      let s1 = Option.get r.Tester.Planarity_tester.stage1 in
      check ci "edges = m - cut"
        (Graph.m g - Partition.State.cut_edges s1.Partition.Stage1.state)
        total_edges
  | None -> Alcotest.fail "stage2 missing"

let test_completeness_qcheck =
  QCheck.Test.make
    ~name:"one-sided error: planar inputs always accepted (all seeds)"
    ~count:30
    QCheck.(triple (int_range 10 100) (int_range 0 10000) (int_range 0 5))
    (fun (n, gseed, tseed) ->
      let rng = Random.State.make [| gseed |] in
      let g =
        match gseed mod 3 with
        | 0 -> Generators.apollonian rng n
        | 1 -> Generators.random_planar rng ~n ~m:(max (n - 1) (2 * n))
        | _ -> Generators.random_tree rng n
      in
      (not (Traversal.is_connected g))
      || Tester.Planarity_tester.accepts g ~eps:0.35 ~seed:tseed)

let test_soundness_qcheck =
  QCheck.Test.make ~name:"certified 0.25-far graphs rejected w.h.p."
    ~count:20
    QCheck.(pair (int_range 60 140) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.far_from_planar rng ~n ~eps:0.25 in
      not (Tester.Planarity_tester.accepts g ~eps:0.2 ~seed))

(* ------------------------------------------------------------------ *)
(* Corollary 16 testers                                                *)
(* ------------------------------------------------------------------ *)

let test_cycle_freeness () =
  let tree = Generators.random_tree (Random.State.make [| 8 |]) 150 in
  check cb "forest accepted" true
    (Tester.Minor_free_testers.test_cycle_freeness tree ~eps:0.3)
      .Tester.Minor_free_testers.accepted;
  let grid = Generators.grid 10 10 in
  check cb "grid rejected (far from forest)" false
    (Tester.Minor_free_testers.test_cycle_freeness grid ~eps:0.3)
      .Tester.Minor_free_testers.accepted

let test_cycle_freeness_randomized () =
  let tree = Generators.random_tree (Random.State.make [| 9 |]) 150 in
  check cb "forest accepted (randomized)" true
    (Tester.Minor_free_testers.test_cycle_freeness
       ~mode:(Tester.Minor_free_testers.Randomized 0.1) tree ~eps:0.3)
      .Tester.Minor_free_testers.accepted

let test_bipartiteness () =
  let grid = Generators.grid 10 10 in
  check cb "grid accepted" true
    (Tester.Minor_free_testers.test_bipartiteness grid ~eps:0.3)
      .Tester.Minor_free_testers.accepted;
  let tri = Generators.apollonian (Random.State.make [| 10 |]) 120 in
  check cb "triangulation rejected" false
    (Tester.Minor_free_testers.test_bipartiteness tri ~eps:0.3)
      .Tester.Minor_free_testers.accepted

let test_bipartite_one_sided_qcheck =
  QCheck.Test.make ~name:"bipartiteness tester accepts bipartite planar"
    ~count:20
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.random_bipartite_planar rng 64 in
      (Tester.Minor_free_testers.test_bipartiteness g ~eps:0.3)
        .Tester.Minor_free_testers.accepted)

let test_cycle_free_one_sided_qcheck =
  QCheck.Test.make ~name:"cycle-freeness tester accepts forests" ~count:20
    QCheck.(pair (int_range 5 120) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed |]) n in
      (Tester.Minor_free_testers.test_cycle_freeness g ~eps:0.4)
        .Tester.Minor_free_testers.accepted)

(* ------------------------------------------------------------------ *)
(* Spanners                                                            *)
(* ------------------------------------------------------------------ *)

let test_spanner_size_and_stretch () =
  let g = Generators.apollonian (Random.State.make [| 11 |]) 250 in
  let eps = 0.3 in
  let r = Tester.Spanner.build g ~eps in
  let sp = r.Tester.Spanner.spanner in
  check cb "subgraph size bound" true
    (float_of_int (Graph.m sp) <= (1.0 +. eps) *. float_of_int (Graph.n g));
  check cb "connected" true (Traversal.is_connected sp);
  let stretch = Tester.Spanner.measured_stretch g sp in
  check cb "measured within bound" true
    (stretch <= r.Tester.Spanner.stretch_bound);
  (* spanner is a subgraph *)
  Graph.iter_edges (fun _ u v -> check cb "edge of g" true (Graph.has_edge g u v)) sp

let test_spanner_tree_input () =
  let g = Generators.random_tree (Random.State.make [| 12 |]) 100 in
  let r = Tester.Spanner.build g ~eps:0.2 in
  check cb "tree spanner keeps connectivity" true
    (Traversal.is_connected r.Tester.Spanner.spanner)

let test_spanner_randomized_mode () =
  let g = Generators.apollonian (Random.State.make [| 13 |]) 200 in
  let r =
    Tester.Spanner.build ~mode:(Tester.Spanner.Randomized 0.1) ~seed:4 g
      ~eps:0.4
  in
  check cb "connected" true (Traversal.is_connected r.Tester.Spanner.spanner)

let test_spanner_qcheck =
  QCheck.Test.make ~name:"spanner: size bound and stretch on planar inputs"
    ~count:10
    QCheck.(pair (int_range 30 120) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.apollonian (Random.State.make [| seed |]) n in
      let r = Tester.Spanner.build g ~eps:0.5 in
      let sp = r.Tester.Spanner.spanner in
      float_of_int (Graph.m sp) <= 1.5 *. float_of_int n
      && Traversal.is_connected sp
      && Tester.Spanner.measured_stretch g sp <= r.Tester.Spanner.stretch_bound)

(* ------------------------------------------------------------------ *)
(* Elkin-Neiman baseline                                               *)
(* ------------------------------------------------------------------ *)

let test_en_stretch () =
  let g = Generators.apollonian (Random.State.make [| 14 |]) 150 in
  let k = 4 in
  let r = Tester.Elkin_neiman.build g ~k ~delta:0.2 ~seed:2 in
  if not r.Tester.Elkin_neiman.failed then begin
    check cb "connected" true
      (Traversal.is_connected r.Tester.Elkin_neiman.spanner);
    check cb "stretch <= 2k - 1" true
      (Tester.Spanner.measured_stretch g r.Tester.Elkin_neiman.spanner
      <= (2 * k) - 1)
  end

let test_en_rounds () =
  let g = Generators.grid 8 8 in
  let r = Tester.Elkin_neiman.build g ~k:5 ~delta:0.2 ~seed:1 in
  check ci "k rounds" 5 r.Tester.Elkin_neiman.rounds

let test_en_qcheck =
  QCheck.Test.make ~name:"elkin-neiman: stretch bound when no failure"
    ~count:15
    QCheck.(triple (int_range 20 100) (int_range 2 8) (int_range 0 10000))
    (fun (n, k, seed) ->
      let g = Generators.apollonian (Random.State.make [| seed |]) n in
      let r = Tester.Elkin_neiman.build g ~k ~delta:0.2 ~seed in
      r.Tester.Elkin_neiman.failed
      || Tester.Spanner.measured_stretch g r.Tester.Elkin_neiman.spanner
         <= (2 * k) - 1)


(* ------------------------------------------------------------------ *)
(* Hereditary tester and the vertex-label ablation                     *)
(* ------------------------------------------------------------------ *)

let test_hereditary_planarity_as_property () =
  (* Use per-part planarity itself as a hereditary property. *)
  let planar_g = Generators.apollonian (Random.State.make [| 31 |]) 120 in
  let far_g = Generators.far_from_planar (Random.State.make [| 32 |]) ~n:120 ~eps:0.3 in
  check cb "planar parts pass" true
    (Tester.Minor_free_testers.test_hereditary planar_g ~eps:0.3
       ~check_part:Planarity.Lr.is_planar)
      .Tester.Minor_free_testers.accepted;
  check cb "far graph has a failing part" false
    (Tester.Minor_free_testers.test_hereditary far_g ~eps:0.3
       ~check_part:Planarity.Lr.is_planar)
      .Tester.Minor_free_testers.accepted

let test_hereditary_max_degree () =
  (* "max degree <= 4" is hereditary; grids satisfy it, stars do not. *)
  let grid = Generators.grid 8 8 in
  let ok g = Graph.max_degree g <= 4 in
  check cb "grid passes" true
    (Tester.Minor_free_testers.test_hereditary grid ~eps:0.3 ~check_part:ok)
      .Tester.Minor_free_testers.accepted;
  let star = Generators.star 30 in
  check cb "star fails" false
    (Tester.Minor_free_testers.test_hereditary star ~eps:0.9 ~check_part:ok)
      .Tester.Minor_free_testers.accepted

let test_vertex_label_ablation () =
  (* The paper's literal labeling falsely flags planar graphs; corner keys
     do not (the DESIGN.md correction). *)
  let g = Generators.apollonian (Random.State.make [| 33 |]) 60 in
  check cb "vertex labels break claim 10" true
    (Tester.Violation.count_violating_vertex_labels g > 0);
  check ci "corner keys obey claim 10" 0 (Tester.Violation.count_violating g)

let test_vertex_labels_still_sound () =
  (* Soundness (Claim 8 direction) holds for both labelings. *)
  let g = Generators.far_from_planar (Random.State.make [| 34 |]) ~n:80 ~eps:0.25 in
  check cb "vertex labels detect far" true
    (Tester.Violation.count_violating_vertex_labels g
     >= Planarity.Distance.euler_lower_bound g)


let test_collect_mode () =
  (* The in-model collect-and-embed mode must agree on the verdict. *)
  let planar_g = Generators.apollonian (Random.State.make [| 63 |]) 120 in
  let r =
    Tester.Planarity_tester.run ~embedding:Tester.Stage2.Collect planar_g
      ~eps:0.3 ~seed:1
  in
  (match r.Tester.Planarity_tester.verdict with
  | Tester.Planarity_tester.Accept -> ()
  | Tester.Planarity_tester.Reject _ ->
      Alcotest.fail "collect mode broke completeness"
  | Tester.Planarity_tester.Degraded msg ->
      Alcotest.fail ("collect mode degraded without faults: " ^ msg));
  let far_g =
    Generators.far_from_planar (Random.State.make [| 64 |]) ~n:120 ~eps:0.25
  in
  check cb "collect mode rejects far" false
    (match
       (Tester.Planarity_tester.run ~embedding:Tester.Stage2.Collect far_g
          ~eps:0.2 ~seed:1)
         .Tester.Planarity_tester.verdict
     with
    | Tester.Planarity_tester.Accept -> true
    | Tester.Planarity_tester.Reject _ | Tester.Planarity_tester.Degraded _ ->
        false)

let test_en_mode_completeness () =
  (* Exponential-shift partition mode keeps the verdict one-sided. *)
  for seed = 0 to 9 do
    let g = Generators.apollonian (Random.State.make [| seed; 61 |]) 150 in
    check cb "planar accepted (exp-shift mode)" true
      (Tester.Planarity_tester.accepts
         ~partition:Tester.Planarity_tester.Exponential_shifts g ~eps:0.3
         ~seed)
  done

let test_en_mode_soundness () =
  let g =
    Generators.far_from_planar (Random.State.make [| 62 |]) ~n:200 ~eps:0.25
  in
  check cb "far rejected (exp-shift mode)" false
    (Tester.Planarity_tester.accepts
       ~partition:Tester.Planarity_tester.Exponential_shifts g ~eps:0.2
       ~seed:3)

(* ------------------------------------------------------------------ *)
(* effective_eps clamp (Random_partition rescale)                      *)
(* ------------------------------------------------------------------ *)

let test_effective_eps_boundaries () =
  let cf = Alcotest.float 1e-12 in
  let invariant name g eps =
    let eps' = Tester.Minor_free_testers.effective_eps g ~eps in
    check cb (name ^ ": eps' * n >= 1") true
      (eps' *. float_of_int (Graph.n g) >= 1.0);
    check cb (name ^ ": eps' <= 0.999") true (eps' <= 0.999)
  in
  (* Sparse graph, tiny eps: the raw rescale eps*m/n lands far below 1/n
     and must be clamped up to exactly 1/n. *)
  let path = Generators.path 1000 in
  check cf "sparse floor is 1/n" 0.001
    (Tester.Minor_free_testers.effective_eps path ~eps:0.0001);
  invariant "path" path 0.0001;
  (* Dense graph, large eps: the rescale exceeds 1 and must cap at
     0.999. *)
  let dense = Generators.complete 50 in
  check cf "dense cap is 0.999" 0.999
    (Tester.Minor_free_testers.effective_eps dense ~eps:0.9);
  (* Mid-range: no clamp, plain rescale eps * m / n. *)
  let grid = Generators.grid 10 10 in
  let eps = 0.3 in
  check cf "mid-range is eps*m/n"
    (eps *. float_of_int (Graph.m grid) /. float_of_int (Graph.n grid))
    (Tester.Minor_free_testers.effective_eps grid ~eps);
  invariant "grid" grid eps;
  (* The degenerate regime that motivated the floor: m << n / eps used to
     produce a vacuous cut target (eps' * n < 1). *)
  let stars = Generators.star 5000 in
  invariant "star" stars 0.00001

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume                                                   *)
(* ------------------------------------------------------------------ *)

module PT = Tester.Planarity_tester

exception Simulated_kill

(* Interrupt a multi-phase Stage I run right after its first checkpoint
   save, resume from the (marshal round-tripped) snapshot, and demand the
   resumed run's full stats JSON — totals and per-round telemetry — is
   byte-identical to an uninterrupted run's. *)
let test_checkpoint_resume_byte_identical () =
  let g = Generators.grid 20 20 in
  let eps = 0.05 and seed = 2 in
  let stats_json r telemetry =
    Congest.Telemetry.Json.to_string
      (Report.tester_stats ~n:(Graph.n g) ~m:(Graph.m g) ~eps ~seed
         ~domains:1 ~telemetry r)
  in
  let tel_ref = Congest.Telemetry.create () in
  let r_ref = PT.run ~telemetry:tel_ref g ~eps ~seed in
  (match r_ref.PT.stage1 with
  | Some s ->
      check cb "reference run is multi-phase" true
        (List.length s.Partition.Stage1.phases >= 2)
  | None -> Alcotest.fail "no stage1 result");
  let store = ref None in
  let tel1 = Congest.Telemetry.create () in
  let kill_ck =
    {
      PT.every = 1;
      load = (fun () -> None);
      save =
        (fun s ->
          (* Marshal round-trip: checks the snapshot really is
             marshal-safe AND deep-copies it, as the file container
             does. *)
          store := Some (Marshal.from_string (Marshal.to_string s []) 0);
          raise Simulated_kill);
    }
  in
  (try
     ignore (PT.run ~telemetry:tel1 ~checkpoint:kill_ck g ~eps ~seed);
     Alcotest.fail "simulated kill did not propagate"
   with Simulated_kill -> ());
  check cb "snapshot captured" true (!store <> None);
  let tel2 = Congest.Telemetry.create () in
  let resume_ck =
    { PT.every = 1; load = (fun () -> !store); save = (fun _ -> ()) }
  in
  let r2 = PT.run ~telemetry:tel2 ~checkpoint:resume_ck g ~eps ~seed in
  check Alcotest.string "stats JSON byte-identical after resume"
    (stats_json r_ref tel_ref) (stats_json r2 tel2)

(* A checkpointed-but-never-interrupted run must equal a plain run. *)
let test_checkpoint_passive_identical () =
  let g = Generators.grid 16 16 in
  let eps = 0.1 and seed = 5 in
  let r_ref = PT.run g ~eps ~seed in
  let store = ref None in
  let saves = ref 0 in
  let ck =
    {
      PT.every = 2;
      load = (fun () -> None);
      save =
        (fun s ->
          incr saves;
          store := Some (Marshal.from_string (Marshal.to_string s []) 0));
    }
  in
  let r = PT.run ~checkpoint:ck g ~eps ~seed in
  check cb "saved at least once" true (!saves >= 1);
  check cb "same verdict" true (r.PT.verdict = r_ref.PT.verdict);
  check ci "same rounds" r_ref.PT.rounds r.PT.rounds;
  check ci "same messages" r_ref.PT.messages r.PT.messages;
  check ci "same bits" r_ref.PT.total_bits r.PT.total_bits;
  (* And resuming from a mid-run snapshot of it also converges. *)
  let r3 =
    PT.run
      ~checkpoint:{ PT.every = 2; load = (fun () -> !store); save = ignore }
      g ~eps ~seed
  in
  check cb "resume from passive snapshot" true (r3.PT.verdict = r_ref.PT.verdict);
  check ci "resume rounds" r_ref.PT.rounds r3.PT.rounds

let test_checkpoint_rejects_exp_shifts () =
  let g = Generators.grid 8 8 in
  let ck = { PT.every = 1; load = (fun () -> None); save = ignore } in
  check cb "Exponential_shifts + checkpoint raises" true
    (try
       ignore
         (PT.run ~partition:PT.Exponential_shifts ~checkpoint:ck g ~eps:0.3
            ~seed:1);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "tester"
    [
      ( "violation",
        [
          Alcotest.test_case "compare_label" `Quick test_compare_label;
          Alcotest.test_case "labels on star" `Quick test_labels_on_star;
          Alcotest.test_case "label depth" `Quick test_labels_depth;
          Alcotest.test_case "intersects" `Quick test_intersects;
          Alcotest.test_case "non-tree edges" `Quick test_non_tree_edges;
          Alcotest.test_case "claim 10 cases" `Quick
            test_claim10_planar_no_violations;
          Alcotest.test_case "violations on far graphs" `Quick
            test_violations_on_far_graphs;
          Alcotest.test_case "scan rotation" `Quick
            test_scan_neighbor_rotation;
          q test_claim10_qcheck;
          q test_corollary9_qcheck;
        ] );
      ( "planarity-tester",
        [
          Alcotest.test_case "accepts planar" `Quick
            test_full_tester_accepts_planar;
          Alcotest.test_case "rejects far" `Quick test_full_tester_rejects_far;
          Alcotest.test_case "K5 euler reject" `Quick
            test_tester_k5_euler_reject;
          Alcotest.test_case "report fields" `Quick test_tester_report_fields;
          Alcotest.test_case "part counts" `Quick test_stage2_part_counts;
          q test_completeness_qcheck;
          q test_soundness_qcheck;
        ] );
      ( "engine-invariance",
        [
          Alcotest.test_case "apollonian, domains 1/2/4 + ff off" `Quick
            test_domains_invariant_apollonian;
          Alcotest.test_case "grid, domains 1/2/4 + ff off" `Quick
            test_domains_invariant_grid;
          Alcotest.test_case "far graph, domains 1/2/4 + ff off" `Quick
            test_domains_invariant_far;
        ] );
      ( "eps-rescale",
        [
          Alcotest.test_case "effective_eps boundaries" `Quick
            test_effective_eps_boundaries;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill + resume is byte-identical" `Quick
            test_checkpoint_resume_byte_identical;
          Alcotest.test_case "passive checkpointing changes nothing" `Quick
            test_checkpoint_passive_identical;
          Alcotest.test_case "refused in exp-shift mode" `Quick
            test_checkpoint_rejects_exp_shifts;
        ] );
      ( "exp-shift-mode",
        [
          Alcotest.test_case "completeness" `Quick test_en_mode_completeness;
          Alcotest.test_case "collect-and-embed mode" `Quick test_collect_mode;
          Alcotest.test_case "soundness" `Quick test_en_mode_soundness;
        ] );
      ( "corollary-16",
        [
          Alcotest.test_case "cycle-freeness" `Quick test_cycle_freeness;
          Alcotest.test_case "cycle-freeness randomized" `Quick
            test_cycle_freeness_randomized;
          Alcotest.test_case "bipartiteness" `Quick test_bipartiteness;
          q test_bipartite_one_sided_qcheck;
          q test_cycle_free_one_sided_qcheck;
        ] );
      ( "hereditary-and-ablation",
        [
          Alcotest.test_case "planarity as hereditary property" `Quick
            test_hereditary_planarity_as_property;
          Alcotest.test_case "max-degree property" `Quick
            test_hereditary_max_degree;
          Alcotest.test_case "vertex-label ablation" `Quick
            test_vertex_label_ablation;
          Alcotest.test_case "vertex labels still sound" `Quick
            test_vertex_labels_still_sound;
        ] );
      ( "spanner",
        [
          Alcotest.test_case "size and stretch" `Quick
            test_spanner_size_and_stretch;
          Alcotest.test_case "tree input" `Quick test_spanner_tree_input;
          Alcotest.test_case "randomized mode" `Quick
            test_spanner_randomized_mode;
          q test_spanner_qcheck;
        ] );
      ( "elkin-neiman",
        [
          Alcotest.test_case "stretch" `Quick test_en_stretch;
          Alcotest.test_case "rounds" `Quick test_en_rounds;
          q test_en_qcheck;
        ] );
    ]
