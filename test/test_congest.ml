open Graphlib

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let q = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Bits                                                                *)
(* ------------------------------------------------------------------ *)

let test_int_bits () =
  check ci "universe 2" 1 (Congest.Bits.int_bits ~universe:2);
  check ci "universe 3" 2 (Congest.Bits.int_bits ~universe:3);
  check ci "universe 6" 3 (Congest.Bits.int_bits ~universe:6);
  check ci "universe 8" 3 (Congest.Bits.int_bits ~universe:8);
  check ci "universe 9" 4 (Congest.Bits.int_bits ~universe:9);
  check ci "universe 1024" 10 (Congest.Bits.int_bits ~universe:1024)

let test_id_bits () =
  check ci "n=1" 1 (Congest.Bits.id_bits 1);
  check ci "n=1000" 10 (Congest.Bits.id_bits 1000)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

module M = struct
  type t = Int of int

  let bits (Int v) = Congest.Bits.int_bits ~universe:(abs v + 2)
end

module E = Congest.Engine.Make (M)

let test_no_messages_terminates () =
  let g = Generators.path 4 in
  let res = E.run g (fun ctx -> E.my_id ctx) in
  check cb "completed" true res.E.completed;
  check ci "no rounds needed" 0 res.E.stats.Congest.Stats.rounds;
  Array.iteri
    (fun v o -> check (Alcotest.option ci) "output" (Some v) o)
    res.E.outputs

let test_single_exchange () =
  (* Each node learns the sum of its neighbors' ids. *)
  let g = Generators.cycle 5 in
  let res =
    E.run g (fun ctx ->
        E.broadcast ctx (M.Int (E.my_id ctx));
        List.fold_left (fun acc (_, M.Int v) -> acc + v) 0 (E.sync ctx))
  in
  check cb "completed" true res.E.completed;
  check ci "one round" 1 res.E.stats.Congest.Stats.rounds;
  Array.iteri
    (fun v o ->
      let expect = ((v + 1) mod 5) + ((v + 4) mod 5) in
      check (Alcotest.option ci) "sum of neighbors" (Some expect) o)
    res.E.outputs

let test_bfs_rounds_match_eccentricity () =
  let g = Generators.grid 6 7 in
  let ecc = Traversal.eccentricity g 0 in
  let res =
    E.run g (fun ctx ->
        let level = ref (if E.my_id ctx = 0 then 0 else -1) in
        if !level = 0 then E.broadcast ctx (M.Int 0);
        let rounds = ref 0 in
        (try
           while !level = -1 do
             incr rounds;
             if !rounds > 100 then raise Exit;
             List.iter
               (fun (_, M.Int d) ->
                 if !level = -1 then begin
                   level := d + 1;
                   E.broadcast ctx (M.Int !level)
                 end)
               (E.sync ctx)
           done
         with Exit -> ());
        !level)
  in
  let dist = Traversal.dist_from g 0 in
  Array.iteri
    (fun v o -> check (Alcotest.option ci) "bfs level" (Some dist.(v)) o)
    res.E.outputs;
  check cb "rounds ~ eccentricity" true
    (res.E.stats.Congest.Stats.rounds >= ecc)

let test_send_non_neighbor_rejected () =
  let g = Generators.path 3 in
  try
    ignore
      (E.run g (fun ctx ->
           if E.my_id ctx = 0 then E.send ctx ~dest:2 (M.Int 1)));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_max_rounds_timeout () =
  let g = Generators.path 2 in
  let res =
    E.run ~max_rounds:5 g (fun ctx ->
        while true do
          ignore (E.sync ctx)
        done)
  in
  check cb "not completed" false res.E.completed;
  check ci "stopped at limit" 5 res.E.stats.Congest.Stats.rounds

let triple = Alcotest.triple ci ci Alcotest.string

let test_rejection_log () =
  let g = Generators.path 3 in
  let res =
    E.run g (fun ctx -> if E.my_id ctx = 1 then E.reject ctx "bad")
  in
  check (Alcotest.list triple) "rejections" [ (0, 1, "bad") ] res.E.rejections

(* Regression: identical (node, reason) rejections recorded in different
   rounds used to be collapsed by a [sort_uniq] — the full log must keep
   them all, with the deduped view exposed separately. *)
let test_rejection_log_not_collapsed () =
  let g = Generators.path 3 in
  let res =
    E.run g (fun ctx ->
        if E.my_id ctx = 1 then begin
          E.reject ctx "dup";
          ignore (E.sync ctx);
          E.reject ctx "dup";
          ignore (E.sync ctx);
          E.reject ctx "other"
        end)
  in
  check (Alcotest.list triple) "chronological full log"
    [ (0, 1, "dup"); (1, 1, "dup"); (2, 1, "other") ]
    res.E.rejections;
  check
    (Alcotest.list (Alcotest.pair ci Alcotest.string))
    "deduped display view"
    [ (1, "dup"); (1, "other") ]
    (E.distinct_rejections res.E.rejections)

let test_message_accounting () =
  let g = Generators.path 2 in
  let res =
    E.run g (fun ctx ->
        E.broadcast ctx (M.Int 1);
        ignore (E.sync ctx))
  in
  check ci "two messages" 2 res.E.stats.Congest.Stats.messages;
  check cb "bits counted" true (res.E.stats.Congest.Stats.total_bits > 0)

let test_bandwidth_charging () =
  (* Oversized traffic on one edge in one round is charged extra rounds. *)
  let g = Generators.path 2 in
  let res =
    E.run ~bandwidth:8 g (fun ctx ->
        if E.my_id ctx = 0 then
          for _ = 1 to 10 do
            E.send ctx ~dest:1 (M.Int 1000)
          done;
        ignore (E.sync ctx))
  in
  check ci "one logical round" 1 res.E.stats.Congest.Stats.rounds;
  check cb "oversized flagged" true (res.E.stats.Congest.Stats.oversized > 0);
  check cb "charged more" true
    (res.E.stats.Congest.Stats.charged_rounds
    > res.E.stats.Congest.Stats.rounds)

let test_determinism () =
  let g = Generators.grid 4 4 in
  let run () =
    E.run ~seed:3 g (fun ctx ->
        let r = Random.State.int (E.rng ctx) 1000 in
        E.broadcast ctx (M.Int r);
        List.fold_left (fun acc (_, M.Int v) -> acc + v) r (E.sync ctx))
  in
  let a = run () and b = run () in
  Array.iteri
    (fun v o -> check (Alcotest.option ci) "same output" o b.E.outputs.(v))
    a.E.outputs

let test_inbox_sorted_by_sender () =
  let g = Generators.star 6 in
  let res =
    E.run g (fun ctx ->
        E.broadcast ctx (M.Int (E.my_id ctx));
        let inbox = E.sync ctx in
        List.map fst inbox)
  in
  match res.E.outputs.(0) with
  | Some senders ->
      check (Alcotest.list ci) "sorted senders" [ 1; 2; 3; 4; 5 ] senders
  | None -> Alcotest.fail "no output"

let test_idle () =
  let g = Generators.path 3 in
  let res =
    E.run g (fun ctx ->
        E.idle ctx 7;
        E.round ctx)
  in
  check ci "rounds" 7 res.E.stats.Congest.Stats.rounds;
  Array.iter
    (fun o -> check (Alcotest.option ci) "round counter" (Some 7) o)
    res.E.outputs


let test_strict_mode () =
  let g = Generators.path 2 in
  try
    ignore
      (E.run ~bandwidth:4 ~strict:true g (fun ctx ->
           if E.my_id ctx = 0 then E.send ctx ~dest:1 (M.Int 100000);
           ignore (E.sync ctx)));
    Alcotest.fail "expected strict-mode failure"
  with Failure _ -> ()

let test_strict_mode_ok_within_budget () =
  let g = Generators.path 2 in
  let res =
    E.run ~bandwidth:64 ~strict:true g (fun ctx ->
        E.broadcast ctx (M.Int 3);
        ignore (E.sync ctx))
  in
  check cb "completed" true res.E.completed

(* ------------------------------------------------------------------ *)
(* Lifecycle: every early exit must discontinue suspended nodes        *)
(* ------------------------------------------------------------------ *)

(* Regression: hitting [max_rounds] used to abandon every suspended
   continuation without unwinding it; finalizers never ran. *)
let test_finalizers_run_on_max_rounds () =
  let g = Generators.path 3 in
  let finalized = ref 0 in
  let res =
    E.run ~max_rounds:4 g (fun ctx ->
        Fun.protect
          ~finally:(fun () -> incr finalized)
          (fun () ->
            while true do
              ignore (E.sync ctx)
            done))
  in
  check cb "not completed" false res.E.completed;
  check ci "stopped at limit" 4 res.E.stats.Congest.Stats.rounds;
  check ci "every node finalized" 3 !finalized

(* Regression: a strict-mode bandwidth failure used to leak every live
   continuation of the aborted run. *)
let test_finalizers_run_on_strict_failure () =
  let g = Generators.path 2 in
  let finalized = ref 0 in
  (try
     ignore
       (E.run ~bandwidth:4 ~strict:true g (fun ctx ->
            Fun.protect
              ~finally:(fun () -> incr finalized)
              (fun () ->
                if E.my_id ctx = 0 then E.send ctx ~dest:1 (M.Int 100000);
                ignore (E.sync ctx);
                ignore (E.sync ctx))));
     Alcotest.fail "expected strict-mode failure"
   with Failure _ -> ());
  check ci "every node finalized" 2 !finalized

(* A node program raising mid-run also finalizes the other nodes. *)
let test_finalizers_run_on_node_exception () =
  let g = Generators.path 3 in
  let finalized = ref 0 in
  (try
     ignore
       (E.run g (fun ctx ->
            Fun.protect
              ~finally:(fun () -> incr finalized)
              (fun () ->
                ignore (E.sync ctx);
                if E.my_id ctx = 0 then failwith "boom";
                ignore (E.sync ctx);
                ignore (E.sync ctx))));
     Alcotest.fail "expected node failure"
   with Failure msg -> check Alcotest.string "the node's exception" "boom" msg);
  check ci "every node finalized" 3 !finalized

(* ------------------------------------------------------------------ *)
(* Bandwidth accounting, pinned                                        *)
(* ------------------------------------------------------------------ *)

(* M.Int 1000 costs int_bits ~universe:1002 = 10 bits. *)
let test_charged_rounds_pinned () =
  let g = Generators.path 2 in
  let res =
    E.run ~bandwidth:8 g (fun ctx ->
        if E.my_id ctx = 0 then
          for _ = 1 to 5 do
            E.send ctx ~dest:1 (M.Int 1000)
          done;
        ignore (E.sync ctx);
        if E.my_id ctx = 0 then E.send ctx ~dest:1 (M.Int 1000);
        ignore (E.sync ctx))
  in
  (* Round 1: 50 bits on one edge -> ceil(50/8) = 7 frames.
     Round 2: 10 bits -> 2 frames.  charged = 7 + 2 = rounds + 7 extra. *)
  check ci "rounds" 2 res.E.stats.Congest.Stats.rounds;
  check ci "charged = rounds + extra frames" 9
    res.E.stats.Congest.Stats.charged_rounds;
  check ci "oversized (edge, round) pairs" 2
    res.E.stats.Congest.Stats.oversized;
  check ci "max edge bits" 50 res.E.stats.Congest.Stats.max_edge_bits

let test_max_edge_bits_per_destination () =
  (* A node sending 10 bits to each of 5 neighbors loads each directed
     edge with 10 bits: per-edge maxima must not aggregate across
     destinations. *)
  let g = Generators.star 6 in
  let res =
    E.run ~bandwidth:64 g (fun ctx ->
        if E.my_id ctx = 0 then E.broadcast ctx (M.Int 1000);
        ignore (E.sync ctx))
  in
  check ci "max edge bits = one destination's load" 10
    res.E.stats.Congest.Stats.max_edge_bits;
  check ci "total bits = sum over destinations" 50
    res.E.stats.Congest.Stats.total_bits;
  (* Two messages to the same destination in one round do aggregate. *)
  let res2 =
    E.run ~bandwidth:64 g (fun ctx ->
        if E.my_id ctx = 0 then begin
          E.send ctx ~dest:1 (M.Int 1000);
          E.send ctx ~dest:1 (M.Int 1000)
        end;
        ignore (E.sync ctx))
  in
  check ci "same-edge messages aggregate" 20
    res2.E.stats.Congest.Stats.max_edge_bits

(* ------------------------------------------------------------------ *)
(* Determinism of the delivery path                                    *)
(* ------------------------------------------------------------------ *)

(* Each node records every inbox it ever saw; two runs with the same seed
   must produce structurally identical transcripts (senders sorted,
   same-sender order preserved), including when the runs execute on
   different domains, as under the parallel bench driver. *)
let inbox_transcript seed =
  let g = Generators.grid 5 5 in
  let res =
    E.run ~seed g (fun ctx ->
        let log = ref [] in
        let r = Random.State.int (E.rng ctx) 3 + 1 in
        for _ = 1 to r do
          E.broadcast ctx (M.Int (Random.State.int (E.rng ctx) 500));
          log := E.sync ctx :: !log
        done;
        List.rev !log)
  in
  (res.E.outputs, res.E.stats.Congest.Stats.charged_rounds)

let test_transcripts_identical () =
  let a = inbox_transcript 11 and b = inbox_transcript 11 in
  check cb "identical transcripts" true (a = b)

let test_transcripts_identical_across_domains () =
  let d1 = Domain.spawn (fun () -> inbox_transcript 11) in
  let d2 = Domain.spawn (fun () -> inbox_transcript 11) in
  let a = Domain.join d1 and b = Domain.join d2 in
  let c = inbox_transcript 11 in
  check cb "domain runs agree" true (a = b);
  check cb "domain run = in-process run" true (a = c)

let test_inbox_sender_order_with_multisend () =
  (* Node 0 sends twice to node 1; node 2 sends once.  The inbox must be
     sorted by sender, with node 0's two messages in reverse send order
     (the documented engine order). *)
  let g = Generators.path 3 in
  let res =
    E.run g (fun ctx ->
        (match E.my_id ctx with
        | 0 ->
            E.send ctx ~dest:1 (M.Int 7);
            E.send ctx ~dest:1 (M.Int 8)
        | 2 -> E.send ctx ~dest:1 (M.Int 9)
        | _ -> ());
        if E.my_id ctx = 1 then
          E.sync ctx |> List.map (fun (s, M.Int v) -> (s, v))
        else [])
  in
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "sorted by sender, same-sender reverse send order"
    [ (0, 8); (0, 7); (2, 9) ]
    (Option.get res.E.outputs.(1))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_telemetry_series_matches_stats () =
  let g = Generators.cycle 6 in
  let tel = Congest.Telemetry.create () in
  let res =
    E.run ~telemetry:tel g (fun ctx ->
        E.broadcast ctx (M.Int (E.my_id ctx));
        ignore (E.sync ctx);
        E.broadcast ctx (M.Int 1);
        ignore (E.sync ctx))
  in
  let phases = Congest.Telemetry.phases tel in
  check ci "one phase" 1 (List.length phases);
  let p = List.hd phases in
  check ci "rounds" res.E.stats.Congest.Stats.rounds p.Congest.Telemetry.rounds;
  check ci "frames = charged rounds" res.E.stats.Congest.Stats.charged_rounds
    p.Congest.Telemetry.frames;
  check ci "bits" res.E.stats.Congest.Stats.total_bits p.Congest.Telemetry.bits;
  check ci "messages" res.E.stats.Congest.Stats.messages
    p.Congest.Telemetry.messages;
  (* The JSON view is well-formed and mentions every phase. *)
  let j = Congest.Telemetry.Json.to_string (Congest.Telemetry.to_json tel) in
  check cb "json has phases" true
    (String.length j > 0 && j.[0] = '{')

let test_telemetry_phase_labels () =
  let tel = Congest.Telemetry.create ~series:false () in
  let g = Generators.path 4 in
  let run_labelled label =
    Congest.Telemetry.phase tel label;
    ignore
      (E.run ~telemetry:tel g (fun ctx ->
           E.broadcast ctx (M.Int 1);
           ignore (E.sync ctx)))
  in
  run_labelled "a";
  run_labelled "b";
  let labels =
    List.map
      (fun (p : Congest.Telemetry.phase_view) -> p.Congest.Telemetry.label)
      (Congest.Telemetry.phases tel)
  in
  check (Alcotest.list Alcotest.string) "labels" [ "a"; "b" ] labels

let test_telemetry_empty_phases_with_ff () =
  (* Empty phases are dropped even when they sit between fast-forwarded
     spans — and a phase whose only content is a fast-forwarded span is
     NOT empty: each skipped round is accounted like the quiescent round
     it replaces. *)
  let tel = Congest.Telemetry.create () in
  Congest.Telemetry.phase tel "empty-head";
  Congest.Telemetry.phase tel "ff-only";
  Congest.Telemetry.fast_forward tel ~rounds:5;
  Congest.Telemetry.phase tel "empty-mid";
  Congest.Telemetry.phase tel "ticked";
  Congest.Telemetry.tick tel ~bits:8 ~frames:1 ~messages:1;
  Congest.Telemetry.phase tel "empty-tail";
  let phases = Congest.Telemetry.phases tel in
  check
    (Alcotest.list Alcotest.string)
    "only round-recording phases survive"
    [ "ff-only"; "ticked" ]
    (List.map
       (fun (p : Congest.Telemetry.phase_view) -> p.Congest.Telemetry.label)
       phases);
  let ff = List.hd phases in
  check ci "ff span counts as rounds" 5 ff.Congest.Telemetry.rounds;
  check ci "ff rounds tracked separately" 5 ff.Congest.Telemetry.fast_forwarded;
  check ci "one frame per quiescent round" 5 ff.Congest.Telemetry.frames;
  check ci "a quiescent round carries no bits" 0 ff.Congest.Telemetry.bits

(* Per-phase series lengths from the JSON view (phase_view exposes only
   aggregates). *)
let series_lengths tel =
  let module J = Congest.Telemetry.Json in
  let field k = function
    | J.Obj fields -> List.assoc k fields
    | _ -> Alcotest.fail "expected an object"
  in
  match field "phases" (Congest.Telemetry.to_json tel) with
  | J.List ps ->
      List.map
        (fun p ->
          let rounds =
            match field "rounds" p with J.Int r -> r | _ -> -1
          in
          let len k =
            match field k (field "series" p) with
            | J.List l -> List.length l
            | _ -> -1
          in
          (rounds, len "bits", len "frames", len "messages", len "stepped"))
        ps
  | _ -> Alcotest.fail "phases must be a list"

let test_telemetry_series_length_domains_ff () =
  (* Every series has exactly one entry per recorded round — including
     the fast-forwarded ones — for every domain count, and the series
     themselves are identical across all four configurations. *)
  let star_ping ~domains ~fast_forward tel =
    ignore
      (E.run ~telemetry:tel ~domains ~fast_forward (Generators.star 29)
         (fun ctx ->
           if E.my_id ctx = 0 then begin
             E.idle ctx 12;
             E.broadcast ctx (M.Int 5);
             ignore (E.wait ctx 30)
           end
           else
             match E.wait ctx 60 with
             | (0, M.Int v) :: _ ->
                 E.send ctx ~dest:0 (M.Int (v * 2));
                 ignore (E.wait ctx 1)
             | _ -> ()))
  in
  let module J = Congest.Telemetry.Json in
  (* Two projections of the JSON view: [drop] removes the members that
     legitimately vary with the domain count (parallel_rounds,
     max_domains — host facts); fast-forwarding additionally changes
     which fibers get stepped (a proven-quiescent round steps none), so
     the cross-ff comparison also drops stepped and fast_forwarded. *)
  let project drop tel =
    let keep = function
      | J.Obj fields ->
          J.Obj
            (List.map
               (fun (k, v) ->
                 if List.mem k drop then (k, J.Null)
                 else if k = "series" then
                   match v with
                   | J.Obj series ->
                       ( k,
                         J.Obj
                           (List.filter
                              (fun (sk, _) -> not (List.mem sk drop))
                              series) )
                   | v -> (k, v)
                 else (k, v))
               fields)
      | p -> p
    in
    match Congest.Telemetry.to_json tel with
    | J.Obj [ ("phases", J.List ps) ] ->
        J.to_string (J.List (List.map keep ps))
    | j -> J.to_string j
  in
  let host_only = [ "parallel_rounds"; "max_domains" ] in
  let views =
    List.map
      (fun (domains, fast_forward) ->
        let tel = Congest.Telemetry.create () in
        star_ping ~domains ~fast_forward tel;
        List.iter
          (fun (rounds, b, f, m, s) ->
            check ci "bits series length = rounds" rounds b;
            check ci "frames series length = rounds" rounds f;
            check ci "messages series length = rounds" rounds m;
            check ci "stepped series length = rounds" rounds s)
          (series_lengths tel);
        ( project host_only tel,
          project (host_only @ [ "stepped"; "fast_forwarded" ]) tel ))
      [ (1, true); (1, false); (3, true); (3, false) ]
  in
  match views with
  | [ (d1_on, bfm_on); (d1_off, bfm_off); (d3_on, _); (d3_off, _) ] ->
      check cb "identical across domains (ff on)" true (d1_on = d3_on);
      check cb "identical across domains (ff off)" true (d1_off = d3_off);
      check cb "bits/frames/messages identical across fast-forward" true
        (bfm_on = bfm_off)
  | _ -> assert false

let test_stats_charge_and_merge () =
  let s1 = Congest.Stats.create ~bandwidth:32 in
  let s2 = Congest.Stats.create ~bandwidth:32 in
  s1.Congest.Stats.rounds <- 3;
  s2.Congest.Stats.rounds <- 4;
  s2.Congest.Stats.max_edge_bits <- 100;
  Congest.Stats.charge s1 10;
  Congest.Stats.add_into s1 s2;
  check ci "rounds merged" 7 s1.Congest.Stats.rounds;
  check ci "charges kept" 10 s1.Congest.Stats.charged_rounds;
  check ci "max merged" 100 s1.Congest.Stats.max_edge_bits

let test_echo_qcheck =
  QCheck.Test.make ~name:"flood-echo counts all nodes on random trees"
    ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed |]) n in
      let depth = Traversal.eccentricity g 0 in
      let res =
        E.run g (fun ctx ->
            (* count subtree sizes toward node 0 *)
            let v = E.my_id ctx in
            let parent = ref (if v = 0 then -1 else -2) in
            let pending = ref (E.degree ctx) in
            let total = ref 1 in
            if v = 0 then E.broadcast ctx (M.Int 0);
            for _ = 1 to (2 * depth) + 2 do
              let inbox = E.sync ctx in
              List.iter
                (fun (from, M.Int x) ->
                  if x = 0 then begin
                    (* wave down *)
                    if !parent = -2 then begin
                      parent := from;
                      decr pending;
                      E.broadcast ctx (M.Int 0)
                    end
                  end
                  else begin
                    total := !total + x - 1;
                    decr pending
                  end)
                inbox;
              if !pending = 0 then begin
                pending := -1;
                if !parent >= 0 then E.send ctx ~dest:!parent (M.Int (!total + 1))
              end
            done;
            !total)
      in
      res.E.outputs.(0) = Some n)


(* ------------------------------------------------------------------ *)
(* wait / fast-forward                                                 *)
(* ------------------------------------------------------------------ *)

let stats_tuple (s : Congest.Stats.t) =
  Congest.Stats.
    ( s.rounds,
      s.charged_rounds,
      s.messages,
      s.total_bits,
      s.max_edge_bits,
      s.oversized )

let test_wait_returns_on_arrival () =
  (* A waiter wakes on the first round its inbox is non-empty, not at its
     budget's expiry. *)
  let g = Generators.path 2 in
  let res =
    E.run g (fun ctx ->
        if E.my_id ctx = 0 then begin
          E.idle ctx 5;
          E.send ctx ~dest:1 (M.Int 42);
          ignore (E.sync ctx);
          0
        end
        else
          match E.wait ctx 100 with [ (0, M.Int v) ] -> v | _ -> -1)
  in
  check cb "completed" true res.E.completed;
  check (Alcotest.option ci) "woken by arrival" (Some 42) res.E.outputs.(1);
  check ci "rounds follow the sender, not the wait budget" 6
    res.E.stats.Congest.Stats.rounds

let test_wait_timeout_empty () =
  let g = Generators.path 3 in
  let res =
    E.run g (fun ctx ->
        let inbox = E.wait ctx 9 in
        (List.length inbox, E.round ctx))
  in
  check ci "rounds = budget" 9 res.E.stats.Congest.Stats.rounds;
  Array.iter
    (fun o ->
      check
        (Alcotest.option (Alcotest.pair ci ci))
        "empty inbox at the deadline" (Some (0, 9)) o)
    res.E.outputs

let test_wait_zero_budget () =
  (* [wait ctx 0] must not end the round. *)
  let g = Generators.path 2 in
  let res =
    E.run g (fun ctx ->
        let inbox = E.wait ctx 0 in
        List.length inbox)
  in
  check ci "no round consumed" 0 res.E.stats.Congest.Stats.rounds;
  Array.iter
    (fun o -> check (Alcotest.option ci) "empty" (Some 0) o)
    res.E.outputs

let test_fast_forward_accounting () =
  (* All nodes parked for 7 rounds with nothing in flight: the expiry
     round is simulated, the 6 before it are fast-forwarded — and the
     nominal accounting is identical with the optimisation disabled. *)
  let g = Generators.path 3 in
  let run ff =
    E.run ~fast_forward:ff g (fun ctx ->
        E.idle ctx 7;
        E.round ctx)
  in
  let on = run true and off = run false in
  check ci "rounds (ff on)" 7 on.E.stats.Congest.Stats.rounds;
  check ci "all but the expiry round skipped" 6
    on.E.stats.Congest.Stats.fast_forwarded_rounds;
  check ci "rounds (ff off)" 7 off.E.stats.Congest.Stats.rounds;
  check ci "nothing skipped with ff off" 0
    off.E.stats.Congest.Stats.fast_forwarded_rounds;
  check cb "stats otherwise identical" true
    (stats_tuple on.E.stats = stats_tuple off.E.stats);
  Array.iter
    (fun o -> check (Alcotest.option ci) "round counter" (Some 7) o)
    on.E.outputs

let test_fast_forward_capped_by_max_rounds () =
  let g = Generators.path 2 in
  let res = E.run ~max_rounds:12 g (fun ctx -> E.idle ctx 1000) in
  check cb "not completed" false res.E.completed;
  check ci "stopped exactly at the limit" 12 res.E.stats.Congest.Stats.rounds

(* A messaging protocol with staggered waits: the hub pings every leaf
   after a long pause, leaves wake on arrival and echo back.  Nominal
   accounting, outputs and the rejection log must be byte-identical with
   fast-forward on and off. *)
let ping_echo ff =
  let g = Generators.star 8 in
  E.run ~fast_forward:ff g (fun ctx ->
      if E.my_id ctx = 0 then begin
        E.idle ctx 20;
        E.broadcast ctx (M.Int 5);
        let echoes = E.wait ctx 50 in
        List.fold_left (fun acc (_, M.Int v) -> acc + v) 0 echoes
      end
      else
        match E.wait ctx 100 with
        | [ (0, M.Int v) ] ->
            if E.my_id ctx = 3 then E.reject ctx "three";
            E.send ctx ~dest:0 (M.Int (v * 2));
            ignore (E.wait ctx 1);
            v
        | _ -> -1)

let test_fast_forward_stats_identical_with_traffic () =
  let on = ping_echo true and off = ping_echo false in
  check cb "fast-forward fired" true
    (on.E.stats.Congest.Stats.fast_forwarded_rounds > 0);
  check cb "stats identical" true
    (stats_tuple on.E.stats = stats_tuple off.E.stats);
  check cb "outputs identical" true (on.E.outputs = off.E.outputs);
  check cb "rejection logs identical" true
    (on.E.rejections = off.E.rejections);
  check (Alcotest.option ci) "hub summed doubled pings" (Some 70)
    on.E.outputs.(0)

(* ------------------------------------------------------------------ *)
(* Sharded stepping: accounting is invariant in [domains]              *)
(* ------------------------------------------------------------------ *)

(* 25 live nodes exceeds the engine's sharding threshold, so d > 1 runs
   genuinely cut the worklist into blocks.  Everything observable —
   inbox transcripts, outputs, stats, the rejection log — must match the
   serial run exactly. *)
let sharded_run d =
  let g = Generators.grid 5 5 in
  let res =
    E.run ~seed:7 ~domains:d g (fun ctx ->
        let log = ref [] in
        let r = Random.State.int (E.rng ctx) 3 + 2 in
        for i = 1 to r do
          E.broadcast ctx (M.Int ((100 * E.my_id ctx) + i));
          log := E.sync ctx :: !log
        done;
        if Random.State.int (E.rng ctx) 5 = 0 then E.reject ctx "sampled";
        ignore (E.wait ctx (1 + (E.my_id ctx mod 4)));
        List.rev !log)
  in
  (res.E.outputs, stats_tuple res.E.stats, res.E.rejections)

let test_sharded_accounting_invariant () =
  let serial = sharded_run 1 in
  List.iter
    (fun d ->
      check cb
        (Printf.sprintf "domains=%d identical to serial" d)
        true
        (sharded_run d = serial))
    [ 2; 3; 4 ]

let test_sharded_exception_choice () =
  (* Several nodes fail in the same round across different blocks: the
     propagated exception must be the lowest failing node's, for any
     domain count. *)
  let g = Generators.grid 5 5 in
  List.iter
    (fun d ->
      try
        ignore
          (E.run ~domains:d g (fun ctx ->
               ignore (E.sync ctx);
               if E.my_id ctx mod 7 = 3 then
                 failwith (string_of_int (E.my_id ctx));
               ignore (E.sync ctx)));
        Alcotest.fail "expected node failure"
      with Failure msg ->
        check Alcotest.string
          (Printf.sprintf "lowest failing node wins (domains=%d)" d)
          "3" msg)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let neighbor_sum_protocol ctx =
  E.broadcast ctx (M.Int (E.my_id ctx));
  List.fold_left (fun acc (_, M.Int v) -> acc + v) 0 (E.sync ctx)

let stats_tuple (s : Congest.Stats.t) =
  Congest.Stats.
    ( (s.rounds, s.charged_rounds, s.messages, s.total_bits, s.max_edge_bits),
      (s.dropped, s.duplicated, s.delayed, s.crashed_nodes),
      s.fast_forwarded_rounds )

let test_faults_none_identity () =
  (* ~faults:Faults.none must be byte-identical to no ?faults at all. *)
  let g = Generators.grid 4 4 in
  let plain = E.run g neighbor_sum_protocol in
  let withnone = E.run ~faults:Congest.Faults.none g neighbor_sum_protocol in
  check cb "outputs equal" true (plain.E.outputs = withnone.E.outputs);
  check cb "stats equal" true
    (stats_tuple plain.E.stats = stats_tuple withnone.E.stats);
  check ci "nothing dropped" 0 withnone.E.stats.Congest.Stats.dropped

let test_faults_drop_all () =
  (* drop=1.0: every message is destroyed but still charged on the wire;
     protocols see pure silence. *)
  let g = Generators.cycle 5 in
  let faults = Congest.Faults.make ~drop:1.0 () in
  let res = E.run ~faults g neighbor_sum_protocol in
  check cb "completed" true res.E.completed;
  Array.iter
    (fun o -> check (Alcotest.option ci) "silence everywhere" (Some 0) o)
    res.E.outputs;
  check ci "all 10 directed messages dropped" 10
    res.E.stats.Congest.Stats.dropped;
  check ci "dropped messages still charged" 10
    res.E.stats.Congest.Stats.messages;
  check cb "bits charged" true (res.E.stats.Congest.Stats.total_bits > 0)

let test_faults_duplicate_all () =
  let g = Generators.cycle 4 in
  let faults = Congest.Faults.make ~duplicate:1.0 () in
  let res = E.run ~faults g neighbor_sum_protocol in
  check cb "completed" true res.E.completed;
  Array.iteri
    (fun v o ->
      let expect = 2 * (((v + 1) mod 4) + ((v + 3) mod 4)) in
      check (Alcotest.option ci) "every message received twice" (Some expect) o)
    res.E.outputs;
  check ci "8 duplications" 8 res.E.stats.Congest.Stats.duplicated;
  check ci "both copies charged" 16 res.E.stats.Congest.Stats.messages

let test_faults_delay_arrival () =
  (* delay=1.0, max_delay=1: every message lands exactly one round late. *)
  let g = Generators.path 2 in
  let faults = Congest.Faults.make ~delay:1.0 ~max_delay:1 () in
  let res =
    E.run ~faults g (fun ctx ->
        if E.my_id ctx = 0 then begin
          E.broadcast ctx (M.Int 7);
          ignore (E.sync ctx);
          ignore (E.sync ctx);
          -1
        end
        else
          let r1 = List.length (E.sync ctx) in
          let r2 = List.length (E.sync ctx) in
          (10 * r1) + r2)
  in
  check cb "completed" true res.E.completed;
  check (Alcotest.option ci) "empty round 1, arrival in round 2" (Some 1)
    res.E.outputs.(1);
  check ci "one delayed message" 1 res.E.stats.Congest.Stats.delayed

let test_faults_crash_stop () =
  (* A node crash-stopped from round 1 never completes: the run ends with
     completed=false, the crash is counted, and neighbors see silence. *)
  let g = Generators.path 3 in
  let faults =
    Congest.Faults.make
      ~crashes:
        [ { Congest.Faults.node = 1; from_round = 1; until_round = max_int } ]
      ()
  in
  let res = E.run ~faults g neighbor_sum_protocol in
  check cb "not completed" false res.E.completed;
  check ci "one crash event" 1 res.E.stats.Congest.Stats.crashed_nodes;
  check (Alcotest.option ci) "crashed node has no output" None res.E.outputs.(1);
  check (Alcotest.option ci) "neighbor heard silence" (Some 0) res.E.outputs.(0);
  check (Alcotest.option ci) "other neighbor too" (Some 0) res.E.outputs.(2)

let test_faults_crash_recover () =
  (* Crash-recover: node 1 is down for rounds 1-2 and back at round 3; a
     message sent while it was down is dropped, one sent after recovery
     arrives. *)
  let g = Generators.path 2 in
  let faults =
    Congest.Faults.make
      ~crashes:[ { Congest.Faults.node = 1; from_round = 1; until_round = 3 } ]
      ()
  in
  let res =
    E.run ~faults g (fun ctx ->
        if E.my_id ctx = 0 then begin
          (* round 1: node 1 is down; rounds 3: it is back *)
          E.broadcast ctx (M.Int 1);
          ignore (E.sync ctx);
          ignore (E.sync ctx);
          E.broadcast ctx (M.Int 2);
          ignore (E.sync ctx);
          -1
        end
        else
          (* node 1 sleeps through its crash window, then listens *)
          List.fold_left
            (fun acc (_, M.Int v) -> acc + v)
            0
            (E.sync ctx @ E.sync ctx @ E.sync ctx))
  in
  check cb "completed" true res.E.completed;
  check ci "crash-recover counted once" 1
    res.E.stats.Congest.Stats.crashed_nodes;
  check (Alcotest.option ci) "only the post-recovery message arrived" (Some 2)
    res.E.outputs.(1);
  check ci "the in-window message was dropped" 1
    res.E.stats.Congest.Stats.dropped

let test_faults_deterministic_and_invariant () =
  (* A mixed policy: the full result (outputs + every stat) is a pure
     function of the policy, independent of domains and fast-forward. *)
  let g = Generators.grid 4 5 in
  let faults =
    Congest.Faults.make ~seed:11 ~drop:0.2 ~duplicate:0.1 ~delay:0.15
      ~max_delay:3 ~truncate:0.05 ()
  in
  let run ~domains ~fast_forward =
    let res =
      E.run ~faults ~domains ~fast_forward g (fun ctx ->
          let acc = ref 0 in
          for _ = 1 to 4 do
            E.broadcast ctx (M.Int (E.my_id ctx));
            List.iter (fun (_, M.Int v) -> acc := !acc + v) (E.sync ctx)
          done;
          !acc)
    in
    let (a, faults, _ff) = stats_tuple res.E.stats in
    (res.E.outputs, a, faults)
  in
  let base = run ~domains:1 ~fast_forward:true in
  check cb "policy actually fired" true
    (let _, _, (d, _, _, _) = base in
     d > 0);
  List.iter
    (fun domains ->
      List.iter
        (fun fast_forward ->
          check cb
            (Printf.sprintf "identical at domains=%d ff=%b" domains
               fast_forward)
            true
            (run ~domains ~fast_forward = base))
        [ true; false ])
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* on_error:`Record — all per-node exceptions, not just one            *)
(* ------------------------------------------------------------------ *)

let test_record_mode_collects_all_failures () =
  (* Several nodes fail in the same round across different shard blocks.
     `Propagate keeps the historical lowest-node-wins exception (see
     test_sharded_exception_choice); `Record must log every failure,
     identically for any domain count. *)
  let g = Generators.grid 5 5 in
  let program ctx =
    ignore (E.sync ctx);
    if E.my_id ctx mod 7 = 3 then failwith (string_of_int (E.my_id ctx));
    ignore (E.sync ctx)
  in
  let failing = [ 3; 10; 17; 24 ] in
  let run d =
    let res = E.run ~domains:d ~on_error:`Record g program in
    check cb
      (Printf.sprintf "not completed (domains=%d)" d)
      false res.E.completed;
    List.map
      (fun (round, node, e) ->
        (round, node, match e with Failure m -> m | e -> Printexc.to_string e))
      res.E.failures
  in
  let serial = run 1 in
  check
    (Alcotest.list triple)
    "all four failures recorded, chronological"
    (List.map (fun v -> (1, v, string_of_int v)) failing)
    serial;
  List.iter
    (fun d ->
      check
        (Alcotest.list triple)
        (Printf.sprintf "identical failure log (domains=%d)" d)
        serial (run d))
    [ 2; 4 ]

let test_record_mode_survivors_complete () =
  (* In record mode the healthy nodes keep running to completion. *)
  let g = Generators.cycle 6 in
  let res =
    E.run ~on_error:`Record g (fun ctx ->
        if E.my_id ctx = 2 then failwith "boom";
        neighbor_sum_protocol ctx)
  in
  check cb "run flagged incomplete" false res.E.completed;
  check ci "one failure" 1 (List.length res.E.failures);
  check (Alcotest.option ci) "failed node has no output" None res.E.outputs.(2);
  (* node 0's neighbors are 1 and 5, both healthy *)
  check (Alcotest.option ci) "healthy node finished" (Some 6) res.E.outputs.(0)

let test_propagate_default_unchanged () =
  (* Without ?on_error the engine still raises the (lowest-node) failure. *)
  let g = Generators.path 3 in
  try
    ignore
      (E.run g (fun ctx ->
           ignore (E.sync ctx);
           failwith (string_of_int (E.my_id ctx))));
    Alcotest.fail "expected propagation"
  with Failure msg -> check Alcotest.string "lowest node propagates" "0" msg

(* Appended: classic protocols on the engine. *)
let test_protocols_bfs () =
  let g = Generators.grid 5 6 in
  let r = Congest.Protocols.bfs_tree g ~root:0 ~rounds_bound:(Graph.n g) in
  let expect = Traversal.dist_from g 0 in
  Array.iteri (fun v d -> check ci "level" expect.(v) d) r.Congest.Protocols.level

let test_protocols_leader () =
  let g = Graph.disjoint_union (Generators.cycle 5) (Generators.path 4) in
  let leaders = Congest.Protocols.elect_min_id g ~rounds_bound:(Graph.n g) in
  for v = 0 to 4 do check ci "component 1 leader" 0 leaders.(v) done;
  for v = 5 to 8 do check ci "component 2 leader" 5 leaders.(v) done

let test_protocols_count () =
  let g = Generators.grid 6 6 in
  let count, rounds = Congest.Protocols.count_nodes g ~root:0 ~rounds_bound:(3 * Graph.n g) in
  check ci "counted all" 36 count;
  check cb "rounds sane" true (rounds > 0)

let test_protocols_count_qcheck =
  QCheck.Test.make ~name:"flood-echo count on random connected graphs" ~count:30
    QCheck.(pair (int_range 2 40) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng n 0.25 in
      let members = Traversal.component_of g 0 in
      let count, _ = Congest.Protocols.count_nodes g ~root:0 ~rounds_bound:(3 * n + 4) in
      count = List.length members)

(* The compiled execution path must be indistinguishable from the fiber
   engine on every protocol it recognizes — same outputs, same round
   counts — across connected and disconnected random inputs. *)
let test_protocols_compiled_differential =
  QCheck.Test.make
    ~name:"protocols: compiled mode == fiber mode on random graphs" ~count:30
    QCheck.(pair (int_range 2 40) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 31 |] in
      let g = Generators.gnp rng n 0.2 in
      let run mode =
        let bfs =
          Congest.Protocols.bfs_tree ~mode g ~root:0 ~rounds_bound:(Graph.n g)
        in
        let leaders =
          Congest.Protocols.elect_min_id ~mode g ~rounds_bound:(Graph.n g)
        in
        let count =
          Congest.Protocols.count_nodes ~mode g ~root:0
            ~rounds_bound:((3 * n) + 4)
        in
        ( (bfs.Congest.Protocols.parent, bfs.Congest.Protocols.level,
           bfs.Congest.Protocols.rounds),
          leaders, count )
      in
      run Congest.Compiled.Fiber = run Congest.Compiled.Compiled
      ||
      QCheck.Test.fail_reportf "compiled/fiber divergence at n=%d seed=%d" n
        seed)


(* ------------------------------------------------------------------ *)
(* Million-node substrate: pooled buffers and delay buckets            *)
(* ------------------------------------------------------------------ *)

(* A warmed pool must make per-run allocation independent of the edge
   count: the per-edge state (bit counters, fault indices, inbox slabs)
   lives in the pool, so only the per-node fiber machinery allocates per
   run.  Checked differentially — same node count, same protocol, ~12x
   the edges — because the O(n) fiber cost is inherent and would drown
   any absolute threshold. *)
let test_pool_no_per_edge_alloc () =
  let n = 400 in
  (* Idle protocol: message-proportional allocation (inbox cells, effect
     frames) would otherwise drown the per-edge signal.  The per-run cost
     left is the O(n) fiber machinery, identical for both graphs. *)
  let protocol ctx = E.my_id ctx in
  let faults = Congest.Faults.make ~seed:3 ~delay:0.2 ~max_delay:4 () in
  let alloc_per_run g =
    let pool = E.pool g in
    (* Warm-up grows the slabs and (for the faulted path) the fault-index
       array; afterwards runs must reuse them all. *)
    ignore (E.run ~pool ~faults g protocol);
    ignore (E.run ~pool ~faults g protocol);
    let before = Gc.allocated_bytes () in
    ignore (E.run ~pool ~faults g protocol);
    Gc.allocated_bytes () -. before
  in
  let sparse = Generators.cycle n in
  let dense =
    Generators.gnp (Random.State.make [| 11 |]) n (25.0 /. float_of_int n)
  in
  let msparse = Graph.m sparse and mdense = Graph.m dense in
  check cb "dense has many more edges" true (mdense > 8 * msparse);
  let a_sparse = alloc_per_run sparse and a_dense = alloc_per_run dense in
  (* Any reintroduced per-run O(m) array (the old per-run touched / fidx /
     send buffers were 16-32 B per edge, >= 150 kB at this density) trips
     the fixed slack. *)
  if a_dense > a_sparse +. 32768.0 then
    Alcotest.failf
      "per-run allocation grows with edge count: sparse (m=%d) %.0f B, \
       dense (m=%d) %.0f B"
      msparse a_sparse mdense a_dense

(* Heavy delayed traffic: every message delayed by up to 8 rounds over a
   multi-round protocol.  The round-indexed delay buckets must (a) agree
   with the engine's fault accounting, and (b) keep the run byte-identical
   across domain counts and fast-forward — the PR 3 differential contract
   under stress. *)
let test_delay_bucket_stress () =
  let g = Generators.grid 6 6 in
  let rounds = 30 in
  let protocol ctx =
    let acc = ref 0 in
    for _ = 1 to rounds do
      E.broadcast ctx (M.Int (E.my_id ctx));
      List.iter (fun (_, M.Int v) -> acc := !acc + v) (E.sync ctx)
    done;
    !acc
  in
  let faults = Congest.Faults.make ~seed:17 ~delay:1.0 ~max_delay:8 () in
  let reference = E.run ~faults g protocol in
  check cb "completed under full delay" true reference.E.completed;
  let s = reference.E.stats in
  (* delay=1.0: every send is delayed, so deliveries can never exceed
     delay events (entries still queued when the last fiber finishes are
     counted as delayed but never land). *)
  check cb "every delivery was delayed"
    true
    (s.Congest.Stats.delayed >= s.Congest.Stats.messages
    && s.Congest.Stats.messages > 0);
  List.iter
    (fun (domains, ff) ->
      let r = E.run ~domains ~fast_forward:ff ~faults g protocol in
      check cb
        (Printf.sprintf "identical outputs (domains=%d ff=%b)" domains ff)
        true
        (r.E.outputs = reference.E.outputs);
      check ci
        (Printf.sprintf "identical delayed count (domains=%d ff=%b)" domains
           ff)
        s.Congest.Stats.delayed r.E.stats.Congest.Stats.delayed;
      check ci
        (Printf.sprintf "identical bits (domains=%d ff=%b)" domains ff)
        s.Congest.Stats.total_bits r.E.stats.Congest.Stats.total_bits;
      check ci
        (Printf.sprintf "identical rounds (domains=%d ff=%b)" domains ff)
        s.Congest.Stats.rounds r.E.stats.Congest.Stats.rounds)
    [ (1, false); (2, true); (3, false); (4, true) ]

let () =
  Alcotest.run "congest"
    [
      ( "bits",
        [
          Alcotest.test_case "int_bits" `Quick test_int_bits;
          Alcotest.test_case "id_bits" `Quick test_id_bits;
        ] );
      ( "engine",
        [
          Alcotest.test_case "terminates without messages" `Quick
            test_no_messages_terminates;
          Alcotest.test_case "single exchange" `Quick test_single_exchange;
          Alcotest.test_case "bfs rounds" `Quick
            test_bfs_rounds_match_eccentricity;
          Alcotest.test_case "send to non-neighbor" `Quick
            test_send_non_neighbor_rejected;
          Alcotest.test_case "max_rounds" `Quick test_max_rounds_timeout;
          Alcotest.test_case "rejection log" `Quick test_rejection_log;
          Alcotest.test_case "rejection log keeps repeats" `Quick
            test_rejection_log_not_collapsed;
          Alcotest.test_case "message accounting" `Quick
            test_message_accounting;
          Alcotest.test_case "bandwidth charging" `Quick
            test_bandwidth_charging;
          Alcotest.test_case "deterministic under seed" `Quick
            test_determinism;
          Alcotest.test_case "inbox sorted" `Quick test_inbox_sorted_by_sender;
          Alcotest.test_case "idle" `Quick test_idle;
          Alcotest.test_case "strict mode rejects" `Quick test_strict_mode;
          Alcotest.test_case "strict mode within budget" `Quick
            test_strict_mode_ok_within_budget;
          q test_echo_qcheck;
        ] );
      ( "substrate",
        [
          Alcotest.test_case "no per-edge allocation with a warm pool" `Quick
            test_pool_no_per_edge_alloc;
          Alcotest.test_case "delay buckets under full-delay stress" `Quick
            test_delay_bucket_stress;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "max_rounds finalizes continuations" `Quick
            test_finalizers_run_on_max_rounds;
          Alcotest.test_case "strict failure finalizes continuations" `Quick
            test_finalizers_run_on_strict_failure;
          Alcotest.test_case "node exception finalizes continuations" `Quick
            test_finalizers_run_on_node_exception;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "charged rounds pinned" `Quick
            test_charged_rounds_pinned;
          Alcotest.test_case "max edge bits is per destination" `Quick
            test_max_edge_bits_per_destination;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical transcripts" `Quick
            test_transcripts_identical;
          Alcotest.test_case "identical transcripts across domains" `Quick
            test_transcripts_identical_across_domains;
          Alcotest.test_case "inbox order with multi-send" `Quick
            test_inbox_sender_order_with_multisend;
        ] );
      ( "wait-fast-forward",
        [
          Alcotest.test_case "wait wakes on arrival" `Quick
            test_wait_returns_on_arrival;
          Alcotest.test_case "wait times out empty" `Quick
            test_wait_timeout_empty;
          Alcotest.test_case "wait with zero budget" `Quick
            test_wait_zero_budget;
          Alcotest.test_case "fast-forward accounting" `Quick
            test_fast_forward_accounting;
          Alcotest.test_case "fast-forward capped by max_rounds" `Quick
            test_fast_forward_capped_by_max_rounds;
          Alcotest.test_case "stats identical with traffic" `Quick
            test_fast_forward_stats_identical_with_traffic;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "accounting invariant in domains" `Quick
            test_sharded_accounting_invariant;
          Alcotest.test_case "lowest failing node wins" `Quick
            test_sharded_exception_choice;
        ] );
      ( "faults",
        [
          Alcotest.test_case "Faults.none is the identity" `Quick
            test_faults_none_identity;
          Alcotest.test_case "drop-all is charged silence" `Quick
            test_faults_drop_all;
          Alcotest.test_case "duplicate-all doubles delivery" `Quick
            test_faults_duplicate_all;
          Alcotest.test_case "delay lands one round late" `Quick
            test_faults_delay_arrival;
          Alcotest.test_case "crash-stop" `Quick test_faults_crash_stop;
          Alcotest.test_case "crash-recover" `Quick test_faults_crash_recover;
          Alcotest.test_case "deterministic + domain/ff invariant" `Quick
            test_faults_deterministic_and_invariant;
        ] );
      ( "record-errors",
        [
          Alcotest.test_case "all failures recorded across shards" `Quick
            test_record_mode_collects_all_failures;
          Alcotest.test_case "survivors complete" `Quick
            test_record_mode_survivors_complete;
          Alcotest.test_case "propagate default unchanged" `Quick
            test_propagate_default_unchanged;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "series matches stats" `Quick
            test_telemetry_series_matches_stats;
          Alcotest.test_case "phase labels" `Quick test_telemetry_phase_labels;
          Alcotest.test_case "empty phases interleaved with fast-forward"
            `Quick test_telemetry_empty_phases_with_ff;
          Alcotest.test_case "series length across domains and fast-forward"
            `Quick test_telemetry_series_length_domains_ff;
        ] );
      ( "stats",
        [ Alcotest.test_case "charge and merge" `Quick test_stats_charge_and_merge ]
      );
      ( "protocols",
        [
          Alcotest.test_case "bfs levels" `Quick test_protocols_bfs;
          Alcotest.test_case "min-id leader" `Quick test_protocols_leader;
          Alcotest.test_case "flood-echo count" `Quick test_protocols_count;
          q test_protocols_count_qcheck;
          q test_protocols_compiled_differential;
        ] );
    ]
