open Graphlib

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let test_make_basic () =
  let g = Graph.make ~n:4 [ (0, 1); (1, 2); (3, 1) ] in
  check ci "n" 4 (Graph.n g);
  check ci "m" 3 (Graph.m g);
  check ci "degree 1" 3 (Graph.degree g 1);
  check ci "degree 3" 1 (Graph.degree g 3);
  check ci "max degree" 3 (Graph.max_degree g);
  check cb "has (1,3)" true (Graph.has_edge g 1 3);
  check cb "has (3,1)" true (Graph.has_edge g 3 1);
  check cb "no (0,3)" false (Graph.has_edge g 0 3)

let test_make_rejects_self_loop () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.make: self-loop at 2") (fun () ->
      ignore (Graph.make ~n:3 [ (2, 2) ]))

let test_make_rejects_duplicate () =
  (try
     ignore (Graph.make ~n:3 [ (0, 1); (1, 0) ]);
     Alcotest.fail "expected duplicate rejection"
   with Invalid_argument _ -> ());
  try
    ignore (Graph.make ~n:3 [ (0, 1); (0, 1) ]);
    Alcotest.fail "expected duplicate rejection"
  with Invalid_argument _ -> ()

let test_make_rejects_out_of_range () =
  try
    ignore (Graph.make ~n:3 [ (0, 3) ]);
    Alcotest.fail "expected range rejection"
  with Invalid_argument _ -> ()

let test_dedup () =
  let g = Graph.of_edges_dedup ~n:4 [ (0, 1); (1, 0); (2, 2); (1, 2) ] in
  check ci "m" 2 (Graph.m g)

let test_edge_endpoints_ordered () =
  let g = Graph.make ~n:3 [ (2, 0); (1, 2) ] in
  Graph.iter_edges (fun _ u v -> check cb "ordered" true (u < v)) g

let test_find_edge () =
  let g = Graph.make ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4); (2, 3) ] in
  let e = Graph.find_edge g 3 2 in
  check (Alcotest.pair ci ci) "endpoints" (2, 3) (Graph.edge g e);
  check ci "other endpoint" 2 (Graph.other_endpoint g e 3);
  Alcotest.check_raises "not adjacent" Not_found (fun () ->
      ignore (Graph.find_edge g 1 2))

let test_add_remove () =
  let g = Graph.make ~n:4 [ (0, 1); (1, 2) ] in
  let g2 = Graph.add_edges g [ (2, 3) ] in
  check ci "m grew" 3 (Graph.m g2);
  check cb "new edge" true (Graph.has_edge g2 2 3);
  let g3, remap = Graph.remove_edges g2 (fun e -> Graph.edge g2 e = (1, 2)) in
  check ci "m shrank" 2 (Graph.m g3);
  check cb "old edge kept" true (Graph.has_edge g3 0 1);
  check ci "removed maps to -1" (-1)
    remap.(Graph.find_edge g2 1 2)

let test_add_duplicate_rejected () =
  let g = Graph.make ~n:3 [ (0, 1) ] in
  try
    ignore (Graph.add_edges g [ (1, 0) ]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_induced () =
  let g = Generators.grid 3 3 in
  let sub, back = Graph.induced g [ 0; 1; 3; 4 ] in
  check ci "sub n" 4 (Graph.n sub);
  check ci "sub m" 4 (Graph.m sub);
  check ci "mapping" 3 back.(2)

let test_disjoint_union () =
  let g = Graph.disjoint_union (Generators.cycle 3) (Generators.path 2) in
  check ci "n" 5 (Graph.n g);
  check ci "m" 4 (Graph.m g);
  check cb "shifted edge" true (Graph.has_edge g 3 4)

let test_equal () =
  let g1 = Graph.make ~n:3 [ (0, 1); (1, 2) ] in
  let g2 = Graph.make ~n:3 [ (1, 2); (0, 1) ] in
  check cb "equal up to order" true (Graph.equal g1 g2);
  check cb "different" false (Graph.equal g1 (Generators.path 3 |> fun g -> Graph.add_edges g [(0,2)]))

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let test_union_find () =
  let uf = Union_find.create 6 in
  check ci "count" 6 (Union_find.count uf);
  check cb "union new" true (Union_find.union uf 0 1);
  check cb "union again" false (Union_find.union uf 1 0);
  check cb "same" true (Union_find.same uf 0 1);
  check cb "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  check ci "size" 4 (Union_find.size uf 2);
  check ci "count after" 3 (Union_find.count uf)

let test_union_find_qcheck =
  QCheck.Test.make ~name:"union-find agrees with component labels" ~count:100
    QCheck.(pair (int_range 2 40) (list (pair (int_range 0 39) (int_range 0 39))))
    (fun (n, pairs) ->
      let pairs = List.filter (fun (a, b) -> a < n && b < n) pairs in
      let uf = Union_find.create n in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* reference: BFS components of the multigraph *)
      let g = Graph.of_edges_dedup ~n pairs in
      let comp, _ = Traversal.components g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Union_find.same uf a b <> (comp.(a) = comp.(b)) then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let test_bfs_grid () =
  let g = Generators.grid 4 5 in
  let t = Traversal.bfs g 0 in
  check ci "dist to far corner" 7 t.Traversal.dist.(19);
  check ci "root parent" (-1) t.Traversal.parent.(0);
  check ci "order covers" 20 (Array.length t.Traversal.order);
  (* parent distances decrease by one *)
  Array.iter
    (fun v ->
      if v <> 0 then
        check ci "parent one closer" (t.Traversal.dist.(v) - 1)
          t.Traversal.dist.(t.Traversal.parent.(v)))
    t.Traversal.order

let test_bfs_unreachable () =
  let g = Graph.make ~n:4 [ (0, 1) ] in
  let t = Traversal.bfs g 0 in
  check ci "unreachable dist" (-1) t.Traversal.dist.(3);
  check ci "unreachable parent" (-2) t.Traversal.parent.(3)

let test_components () =
  let g = Graph.disjoint_union (Generators.cycle 3) (Generators.path 4) in
  let comp, c = Traversal.components g in
  check ci "two components" 2 c;
  check cb "split" true (comp.(0) <> comp.(5));
  check cb "together" true (comp.(3) = comp.(6))

let test_connectivity () =
  check cb "grid connected" true (Traversal.is_connected (Generators.grid 3 3));
  check cb "disjoint not" false
    (Traversal.is_connected
       (Graph.disjoint_union (Generators.path 2) (Generators.path 2)))

let test_diameter () =
  check ci "path" 9 (Traversal.diameter (Generators.path 10));
  check ci "cycle" 5 (Traversal.diameter (Generators.cycle 10));
  check ci "grid" 7 (Traversal.diameter (Generators.grid 4 5));
  check ci "star" 2 (Traversal.diameter (Generators.star 10));
  check ci "complete" 1 (Traversal.diameter (Generators.complete 5))

let test_is_forest () =
  check cb "path" true (Traversal.is_forest (Generators.path 5));
  check cb "tree" true
    (Traversal.is_forest (Generators.random_tree (Random.State.make [| 1 |]) 40));
  check cb "cycle" false (Traversal.is_forest (Generators.cycle 4))

let test_spanning_forest () =
  let g = Generators.grid 4 4 in
  let es = Traversal.spanning_forest g in
  check ci "n-1 edges" 15 (List.length es);
  let f, _ = Graph.remove_edges g (fun e -> not (List.mem e es)) in
  check cb "forest" true (Traversal.is_forest f);
  check cb "connected" true (Traversal.is_connected f)

let test_bipartite () =
  check cb "grid bipartite" true (Traversal.is_bipartite (Generators.grid 5 5));
  check cb "even cycle" true (Traversal.is_bipartite (Generators.cycle 8));
  check cb "odd cycle" false (Traversal.is_bipartite (Generators.cycle 9));
  check cb "K3" false (Traversal.is_bipartite (Generators.complete 3));
  check cb "K34" true
    (Traversal.is_bipartite (Generators.complete_bipartite 3 4))

let test_odd_cycle_witness () =
  match Traversal.odd_cycle_witness (Generators.cycle 5) with
  | Some (u, v) ->
      check cb "witness is edge" true (Graph.has_edge (Generators.cycle 5) u v)
  | None -> Alcotest.fail "expected an odd-cycle witness"

(* ------------------------------------------------------------------ *)
(* Girth                                                               *)
(* ------------------------------------------------------------------ *)

let test_girth_known () =
  let some = Alcotest.option ci in
  check some "cycle 7" (Some 7) (Girth.girth (Generators.cycle 7));
  check some "grid" (Some 4) (Girth.girth (Generators.grid 3 4));
  check some "K4" (Some 3) (Girth.girth (Generators.complete 4));
  check some "petersen" (Some 5) (Girth.girth (Generators.petersen ()));
  check some "tree" None (Girth.girth (Generators.path 6));
  check some "hypercube" (Some 4) (Girth.girth (Generators.hypercube 4))

let test_girth_upto () =
  let some = Alcotest.option ci in
  check some "truncated misses" None
    (Girth.girth_upto (Generators.cycle 12) 11);
  check some "truncated finds" (Some 12)
    (Girth.girth_upto (Generators.cycle 12) 12)

let test_break_short_cycles () =
  let rng = Random.State.make [| 4 |] in
  let g = Generators.gnp rng 60 0.15 in
  let g', removed = Girth.break_short_cycles g 6 in
  check cb "some removed" true (removed > 0);
  check ci "edges accounted" (Graph.m g) (Graph.m g' + removed);
  match Girth.girth g' with
  | Some girth -> check cb "girth >= 6" true (girth >= 6)
  | None -> ()

let test_girth_qcheck =
  QCheck.Test.make ~name:"girth via truncation agrees with full search"
    ~count:60
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng 25 0.12 in
      Girth.girth g = Girth.girth_upto g 25)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_generator_sizes () =
  check ci "grid m" 24 (Graph.m (Generators.grid 4 4));
  check ci "torus m" 32 (Graph.m (Generators.torus 4 4));
  check ci "complete m" 10 (Graph.m (Generators.complete 5));
  check ci "bipartite m" 12 (Graph.m (Generators.complete_bipartite 3 4));
  check ci "hypercube m" 32 (Graph.m (Generators.hypercube 4));
  check ci "petersen m" 15 (Graph.m (Generators.petersen ()));
  check ci "star m" 7 (Graph.m (Generators.star 8));
  check ci "binary tree m" 9 (Graph.m (Generators.binary_tree 10))

let test_grid_dims () =
  (* Exact products, rows as close to sqrt n as possible, rows <= cols. *)
  let cp = Alcotest.(pair int int) in
  check cp "12" (3, 4) (Generators.grid_dims 12);
  check cp "16" (4, 4) (Generators.grid_dims 16);
  check cp "18" (3, 6) (Generators.grid_dims 18);
  check cp "100" (10, 10) (Generators.grid_dims 100);
  (* min_side pushes past factorizations with a too-small side:
     15 = 3 * 5 works at min_side 3 (torus), but 2 * 2 families don't. *)
  check cp "15 min_side 3" (3, 5) (Generators.grid_dims ~min_side:3 15);
  check cp "6 default" (2, 3) (Generators.grid_dims 6);
  (try
     ignore (Generators.grid_dims ~min_side:3 6);
     Alcotest.fail "expected Invalid_argument (6 has no side >= 3)"
   with Invalid_argument _ -> ());
  (* Primes have no factorization with both sides >= 2. *)
  (try
     ignore (Generators.grid_dims 13);
     Alcotest.fail "expected Invalid_argument (13 prime)"
   with Invalid_argument _ -> ());
  (* The generated graphs really have exactly n vertices. *)
  List.iter
    (fun n ->
      let r, c = Generators.grid_dims n in
      check ci "grid n" n (Graph.n (Generators.grid r c)))
    [ 6; 12; 35; 144 ];
  let r, c = Generators.grid_dims ~min_side:3 15 in
  check ci "torus n" 15 (Graph.n (Generators.torus r c))

let test_apollonian_maximal_planar () =
  let rng = Random.State.make [| 8 |] in
  let g = Generators.apollonian rng 50 in
  check ci "m = 3n - 6" (3 * 50 - 6) (Graph.m g);
  check cb "connected" true (Traversal.is_connected g)

let test_random_tree_is_tree () =
  let rng = Random.State.make [| 9 |] in
  let g = Generators.random_tree rng 64 in
  check ci "m" 63 (Graph.m g);
  check cb "forest" true (Traversal.is_forest g);
  check cb "connected" true (Traversal.is_connected g)

let test_far_from_planar_certified () =
  let rng = Random.State.make [| 10 |] in
  let g = Generators.far_from_planar rng ~n:80 ~eps:0.2 in
  check cb "certified far" true (Planarity.Distance.is_certified_far g ~eps:0.2)

let test_k5_necklace () =
  let g = Generators.k5_necklace 4 in
  check ci "n" 20 (Graph.n g);
  check cb "connected" true (Traversal.is_connected g);
  check ci "euler lb >= copies" 4 (max 4 (Planarity.Distance.euler_lower_bound g))

let test_connected_copies () =
  let g = Generators.connected_copies (Generators.cycle 4) 3 in
  check ci "n" 12 (Graph.n g);
  check ci "m" 14 (Graph.m g);
  check cb "connected" true (Traversal.is_connected g)

let test_relabel_preserves () =
  let rng = Random.State.make [| 11 |] in
  let g = Generators.grid 4 4 in
  let h = Generators.relabel rng g in
  check ci "n" (Graph.n g) (Graph.n h);
  check ci "m" (Graph.m g) (Graph.m h);
  check ci "diameter preserved" (Traversal.diameter g) (Traversal.diameter h)

let test_random_bipartite_planar () =
  let rng = Random.State.make [| 12 |] in
  let g = Generators.random_bipartite_planar rng 49 in
  check cb "bipartite" true (Traversal.is_bipartite g);
  check cb "connected" true (Traversal.is_connected g)

(* ------------------------------------------------------------------ *)
(* Gio                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gio_roundtrip () =
  let g = Generators.petersen () in
  let g' = Gio.of_string (Gio.to_string g) in
  check cb "roundtrip" true (Graph.equal g g')

let test_gio_comments () =
  let g = Gio.of_string "# a comment\n3 1\n\n0 2\n" in
  check ci "n" 3 (Graph.n g);
  check cb "edge" true (Graph.has_edge g 0 2)

let test_gio_bad_input () =
  (try
     ignore (Gio.of_string "3 2\n0 1\n");
     Alcotest.fail "expected mismatch error"
   with Invalid_argument _ -> ());
  try
    ignore (Gio.of_string "nonsense\n");
    Alcotest.fail "expected parse error"
  with Invalid_argument _ -> ()

let test_gio_qcheck =
  QCheck.Test.make ~name:"gio roundtrips arbitrary graphs" ~count:50
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng 20 0.2 in
      Graph.equal g (Gio.of_string (Gio.to_string g)))

let q = QCheck_alcotest.to_alcotest


(* ------------------------------------------------------------------ *)
(* Degeneracy and arboricity bounds                                    *)
(* ------------------------------------------------------------------ *)

let test_degeneracy_known () =
  check ci "tree" 1 (fst (Degeneracy.degeneracy (Generators.random_tree (Random.State.make [| 1 |]) 30)));
  check ci "cycle" 2 (fst (Degeneracy.degeneracy (Generators.cycle 9)));
  check ci "K5" 4 (fst (Degeneracy.degeneracy (Generators.complete 5)));
  check ci "grid" 2 (fst (Degeneracy.degeneracy (Generators.grid 5 5)));
  check ci "apollonian" 3
    (fst (Degeneracy.degeneracy (Generators.apollonian (Random.State.make [| 2 |]) 40)));
  check ci "empty" 0 (fst (Degeneracy.degeneracy (Graph.make ~n:4 [])))

let test_peeling_order_valid () =
  let g = Generators.apollonian (Random.State.make [| 3 |]) 50 in
  let d, order = Degeneracy.degeneracy g in
  let position = Array.make (Graph.n g) 0 in
  Array.iteri (fun i v -> position.(v) <- i) order;
  Array.iter
    (fun v ->
      let later =
        Array.fold_left
          (fun acc w -> if position.(w) > position.(v) then acc + 1 else acc)
          0 (Graph.neighbors g v)
      in
      check cb "back-degree bounded" true (later <= d))
    order

let test_arboricity_bounds () =
  (* planar: arboricity <= 3, so lower <= 3; degeneracy upper <= 5 *)
  let g = Generators.apollonian (Random.State.make [| 4 |]) 80 in
  let lo, hi = Degeneracy.arboricity_bounds g in
  check cb "bracket" true (lo <= hi);
  check cb "planar lower <= 3" true (lo <= 3);
  check cb "planar upper <= 5" true (hi <= 5);
  (* K5: arboricity = ceil(10/4) = 3 *)
  let lo5, _ = Degeneracy.arboricity_bounds (Generators.complete 5) in
  check ci "K5 nash-williams" 3 lo5

let test_degeneracy_qcheck =
  QCheck.Test.make ~name:"degeneracy bounds arboricity bracket" ~count:50
    QCheck.(pair (int_range 2 40) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng n 0.3 in
      let lo, hi = Degeneracy.arboricity_bounds g in
      let d, _ = Degeneracy.degeneracy g in
      lo <= hi && hi <= max d lo && (Graph.m g = 0 || lo >= 1))

let () =
  Alcotest.run "graphlib"
    [
      ( "graph",
        [
          Alcotest.test_case "make basic" `Quick test_make_basic;
          Alcotest.test_case "self loops rejected" `Quick
            test_make_rejects_self_loop;
          Alcotest.test_case "duplicates rejected" `Quick
            test_make_rejects_duplicate;
          Alcotest.test_case "range checked" `Quick
            test_make_rejects_out_of_range;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "endpoints ordered" `Quick
            test_edge_endpoints_ordered;
          Alcotest.test_case "find edge" `Quick test_find_edge;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "add duplicate rejected" `Quick
            test_add_duplicate_rejected;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "equality" `Quick test_equal;
        ] );
      ( "union-find",
        [
          Alcotest.test_case "basics" `Quick test_union_find;
          q test_union_find_qcheck;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs grid" `Quick test_bfs_grid;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "is_forest" `Quick test_is_forest;
          Alcotest.test_case "spanning forest" `Quick test_spanning_forest;
          Alcotest.test_case "bipartiteness" `Quick test_bipartite;
          Alcotest.test_case "odd cycle witness" `Quick test_odd_cycle_witness;
        ] );
      ( "girth",
        [
          Alcotest.test_case "known girths" `Quick test_girth_known;
          Alcotest.test_case "girth_upto" `Quick test_girth_upto;
          Alcotest.test_case "break short cycles" `Quick
            test_break_short_cycles;
          q test_girth_qcheck;
        ] );
      ( "generators",
        [
          Alcotest.test_case "sizes" `Quick test_generator_sizes;
          Alcotest.test_case "grid_dims exact n" `Quick test_grid_dims;
          Alcotest.test_case "apollonian maximal planar" `Quick
            test_apollonian_maximal_planar;
          Alcotest.test_case "random tree" `Quick test_random_tree_is_tree;
          Alcotest.test_case "far certified" `Quick
            test_far_from_planar_certified;
          Alcotest.test_case "k5 necklace" `Quick test_k5_necklace;
          Alcotest.test_case "connected copies" `Quick test_connected_copies;
          Alcotest.test_case "relabel preserves" `Quick test_relabel_preserves;
          Alcotest.test_case "random bipartite planar" `Quick
            test_random_bipartite_planar;
        ] );
      ( "degeneracy",
        [
          Alcotest.test_case "known values" `Quick test_degeneracy_known;
          Alcotest.test_case "peeling order" `Quick test_peeling_order_valid;
          Alcotest.test_case "arboricity bounds" `Quick test_arboricity_bounds;
          q test_degeneracy_qcheck;
        ] );
      ( "gio",
        [
          Alcotest.test_case "roundtrip" `Quick test_gio_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_gio_comments;
          Alcotest.test_case "bad input" `Quick test_gio_bad_input;
          q test_gio_qcheck;
        ] );
    ]
