(* End-to-end smoke tests for the CLI contracts this PR pins down:

   - planartrace: bad arguments exit 2 with usage on stderr (never 0,
     never an uncaught exception, never cmdliner's 124);
   - planarmon compare: 0 on agreement, 1 on deterministic mismatch,
     2 on IO/usage errors;
   - bench --json -: machine JSON on stdout, human report on stderr.

   The binaries are built by dune (see the [deps] in test/dune) and
   invoked relative to the test's cwd inside [_build]. *)

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let planartest = "../bin/planartest.exe"
let planartrace = "../bin/planartrace.exe"
let planarmon = "../bin/planarmon.exe"
let bench = "../bench/main.exe"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Run [argv], return (exit code, stdout, stderr). *)
let run argv =
  let out = Filename.temp_file "cli" ".out" in
  let err = Filename.temp_file "cli" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let cmd =
        Printf.sprintf "%s > %s 2> %s"
          (String.concat " " (List.map Filename.quote argv))
          (Filename.quote out) (Filename.quote err)
      in
      let code = Sys.command cmd in
      (code, slurp out, slurp err))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* planartrace exit paths                                              *)
(* ------------------------------------------------------------------ *)

let test_planartrace_bad_args () =
  let code, _, err = run [ planartrace; "no-such-subcommand" ] in
  check ci "unknown subcommand exits 2" 2 code;
  check cb "usage goes to stderr" true (contains err "planartrace");
  let code, _, err = run [ planartrace; "export" ] in
  check ci "missing argument exits 2" 2 code;
  check cb "stderr names the problem" true (String.length err > 0)

let test_planartrace_corrupt_input () =
  let path = Filename.temp_file "bogus" ".ctrace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "this is not a trace file";
      let code, _, err = run [ planartrace; "info"; path ] in
      check ci "corrupt trace exits 2" 2 code;
      check cb "error mentions the corruption" true
        (contains err "corrupt" || contains err "trace"))

let test_planartrace_help () =
  let code, out, _ = run [ planartrace; "--help" ] in
  check ci "--help exits 0" 0 code;
  check cb "help text rendered" true (contains out "planartrace")

(* ------------------------------------------------------------------ *)
(* planarmon compare exit paths                                        *)
(* ------------------------------------------------------------------ *)

let metrics_doc value =
  Printf.sprintf
    {|{"schema":"metrics/v1","metrics":[{"name":"congest_rounds","kind":"counter","help":"h","stable":true,"series":[{"labels":{},"value":%d}]}]}|}
    value

let with_two_files a b f =
  let pa = Filename.temp_file "base" ".json" in
  let pb = Filename.temp_file "cand" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove pa;
      Sys.remove pb)
    (fun () ->
      write_file pa a;
      write_file pb b;
      f pa pb)

let test_planarmon_compare_ok () =
  with_two_files (metrics_doc 42) (metrics_doc 42) (fun a b ->
      let code, out, _ = run [ planarmon; "compare"; a; b ] in
      check ci "identical documents exit 0" 0 code;
      check cb "summary reports OK" true (contains out "OK"))

let test_planarmon_compare_mismatch () =
  with_two_files (metrics_doc 42) (metrics_doc 43) (fun a b ->
      let code, out, _ = run [ planarmon; "compare"; a; b ] in
      check ci "stable-value drift exits 1" 1 code;
      check cb "offender table names the family" true
        (contains out "congest_rounds"))

let test_planarmon_compare_io_error () =
  let code, _, err =
    run [ planarmon; "compare"; "/nonexistent/a.json"; "/nonexistent/b.json" ]
  in
  check ci "unreadable input exits 2" 2 code;
  check cb "stderr explains" true (String.length err > 0)

let test_planarmon_bad_args () =
  let code, _, _ = run [ planarmon; "no-such-subcommand" ] in
  check ci "unknown subcommand exits 2" 2 code;
  let code, _, _ = run [ planarmon; "compare"; "only-one-file" ] in
  check ci "missing operand exits 2" 2 code

(* ------------------------------------------------------------------ *)
(* bench --json -: stream separation                                   *)
(* ------------------------------------------------------------------ *)

let test_bench_stream_split () =
  let code, out, err =
    run [ bench; "--only"; "E1"; "--quick"; "--no-timings"; "--json"; "-" ]
  in
  check ci "bench exits 0" 0 code;
  (match Report.Json_parse.of_string out with
  | Ok (Report.Json.Obj fields) ->
      check cb "stdout is exactly one bench.planarity/v1 document" true
        (List.assoc_opt "schema" fields
        = Some (Report.Json.String "bench.planarity/v1"))
  | Ok _ -> Alcotest.fail "stdout JSON is not an object"
  | Error e -> Alcotest.failf "stdout is not pure JSON: %s" e);
  check cb "human report moved to stderr" true (contains err "E1");
  check cb "no human chrome leaked into stdout" false (contains out "====")

let test_bench_rejects_unknown_experiment () =
  let code, _, err = run [ bench; "--only"; "E99"; "--quick" ] in
  check ci "unknown experiment id exits 2" 2 code;
  check cb "stderr names the id" true (contains err "E99")

(* ------------------------------------------------------------------ *)
(* --mode: execution-engine selection on both CLIs                     *)
(* ------------------------------------------------------------------ *)

let with_graph f =
  let path = Filename.temp_file "modegraph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let code, out, _ =
        run [ planartest; "gen"; "--family"; "cycle"; "-n"; "32" ]
      in
      check ci "gen exits 0" 0 code;
      write_file path out;
      f path)

let test_bench_rejects_unknown_mode () =
  let code, _, err = run [ bench; "--mode"; "bogus"; "--quick" ] in
  check ci "unknown --mode exits 2" 2 code;
  check cb "stderr names the bad value" true (contains err "bogus")

let test_planartest_rejects_unknown_mode () =
  with_graph (fun g ->
      let code, _, err =
        run [ planartest; "test"; g; "--eps"; "0.3"; "--mode"; "bogus" ]
      in
      check ci "unknown --mode exits 2" 2 code;
      check cb "stderr names the bad value" true (contains err "bogus"))

let test_planartest_mode_stats_identical () =
  with_graph (fun g ->
      let stats mode =
        let out = Filename.temp_file "modestats" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove out)
          (fun () ->
            let code, _, _ =
              run
                [
                  planartest; "test"; g; "--eps"; "0.3"; "--mode"; mode;
                  "--stats-json"; out; "--log-level"; "warn";
                ]
            in
            check ci (mode ^ " run exits 0") 0 code;
            slurp out)
      in
      check Alcotest.string "fiber and compiled stats JSON are byte-identical"
        (stats "fiber") (stats "compiled");
      check Alcotest.string "auto matches fiber too" (stats "fiber")
        (stats "auto"))

(* ------------------------------------------------------------------ *)
(* planartest --property: the tester portfolio through the CLI         *)
(* ------------------------------------------------------------------ *)

let test_planartest_rejects_unknown_property () =
  with_graph (fun g ->
      let code, _, err =
        run [ planartest; "test"; g; "--eps"; "0.3"; "--property"; "nonsense" ]
      in
      check ci "unknown --property exits 2" 2 code;
      check cb "stderr names the bad value" true (contains err "nonsense"))

let test_planartest_property_runs () =
  (* a 32-cycle holds all three properties except cycle-freeness; every
     run must exit 0 (a Reject verdict is still a successful run) and
     stamp the stats JSON with the property member for the new testers *)
  with_graph (fun g ->
      List.iter
        (fun (property, expect_member) ->
          let out = Filename.temp_file "propstats" ".json" in
          Fun.protect
            ~finally:(fun () -> Sys.remove out)
            (fun () ->
              let code, _, _ =
                run
                  [
                    planartest; "test"; g; "--eps"; "0.3"; "--property";
                    property; "--stats-json"; out; "--log-level"; "warn";
                  ]
              in
              check ci (property ^ " run exits 0") 0 code;
              let doc = slurp out in
              check cb
                (property ^ " property member in stats")
                expect_member
                (contains doc
                   (Printf.sprintf "\"property\":%S" property))))
        [ ("planarity", false); ("bipartite", true); ("cycle-free", true) ])

let test_planartest_property_mode_stats_identical () =
  (* The new testers inherit the engine contract: fiber and compiled
     stats JSON are byte-identical. *)
  with_graph (fun g ->
      let stats property mode =
        let out = Filename.temp_file "propmode" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove out)
          (fun () ->
            let code, _, _ =
              run
                [
                  planartest; "test"; g; "--eps"; "0.3"; "--property";
                  property; "--mode"; mode; "--stats-json"; out;
                  "--log-level"; "warn";
                ]
            in
            check ci (property ^ "/" ^ mode ^ " run exits 0") 0 code;
            slurp out)
      in
      List.iter
        (fun property ->
          check Alcotest.string
            (property ^ ": fiber == compiled stats JSON")
            (stats property "fiber")
            (stats property "compiled"))
        [ "bipartite"; "cycle-free" ])

(* ------------------------------------------------------------------ *)
(* planarmon attach / history, planartest --heartbeat/--progress/--ledger *)
(* ------------------------------------------------------------------ *)

let replace_once hay needle repl =
  let nh = String.length hay and nn = String.length needle in
  let rec find i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> hay
  | Some i ->
      String.sub hay 0 i ^ repl ^ String.sub hay (i + nn) (nh - i - nn)

(* One tester run with --heartbeat and --ledger; returns the heartbeat
   document and leaves the ledger at [ledger]. *)
let with_finished_heartbeat f =
  with_graph (fun g ->
      let hb = Filename.temp_file "hb" ".json" in
      let ledger = Filename.temp_file "runs" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove hb;
          Sys.remove ledger)
        (fun () ->
          let code, _, _ =
            run
              [
                planartest; "test"; g; "--eps"; "0.3"; "--heartbeat"; hb;
                "--heartbeat-every"; "4"; "--ledger"; ledger; "--log-level";
                "warn";
              ]
          in
          check ci "heartbeat run exits 0" 0 code;
          f ~graph:g ~hb ~ledger))

let test_attach_missing_file () =
  let code, _, err = run [ planarmon; "attach"; "/nonexistent/hb.json" ] in
  check ci "missing heartbeat exits 2" 2 code;
  check cb "stderr explains" true (String.length err > 0)

let test_attach_corrupt_file () =
  let path = Filename.temp_file "hb" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "not a heartbeat";
      let code, _, _ = run [ planarmon; "attach"; path ] in
      check ci "corrupt heartbeat exits 2" 2 code;
      write_file path {|{"schema":"metrics/v1"}|};
      let code, _, _ = run [ planarmon; "attach"; path ] in
      check ci "wrong schema exits 2" 2 code)

let test_attach_completed_and_stalled () =
  with_finished_heartbeat (fun ~graph:_ ~hb ~ledger:_ ->
      let code, out, _ = run [ planarmon; "attach"; hb ] in
      check ci "finished run exits 0" 0 code;
      check cb "verdict printed" true (contains out "verdict=");
      (* Rewind the same document to a live state with no writer behind
         it: attach must declare the run dead after --stall-after. *)
      let doc = slurp hb in
      let stalled =
        replace_once doc {|"state":"done"|} {|"state":"running"|}
      in
      check cb "rewrite changed the document" true (stalled <> doc);
      write_file hb stalled;
      let code, _, err =
        run
          [
            planarmon; "attach"; hb; "--stall-after"; "0.5"; "--interval";
            "0.1";
          ]
      in
      check ci "stalled heartbeat exits 1" 1 code;
      check cb "stall diagnosis on stderr" true (contains err "dead"))

let test_attach_bad_flags () =
  let code, _, _ =
    run [ planarmon; "attach"; "x.json"; "--stall-after"; "-1" ]
  in
  check ci "negative --stall-after exits 2" 2 code;
  let code, _, _ = run [ planarmon; "attach"; "x.json"; "--interval"; "0" ] in
  check ci "zero --interval exits 2" 2 code

let test_progress_silent_when_not_tty () =
  (* --progress must auto-disable when stderr is not a tty (it is a
     pipe here), leaving stderr free of control characters. *)
  with_graph (fun g ->
      let code, _, err =
        run
          [
            planartest; "test"; g; "--eps"; "0.3"; "--progress";
            "--log-level"; "warn";
          ]
      in
      check ci "--progress run exits 0" 0 code;
      check cb "no progress bar leaked to piped stderr" false
        (contains err "\r["))

let test_history_ledger_roundtrip () =
  with_finished_heartbeat (fun ~graph:g ~hb:_ ~ledger ->
      (* Second run of the identical configuration: same fingerprint,
         same digest — history groups them and stays green. *)
      let code, _, _ =
        run
          [
            planartest; "test"; g; "--eps"; "0.3"; "--ledger"; ledger;
            "--log-level"; "warn";
          ]
      in
      check ci "second ledger run exits 0" 0 code;
      let code, out, _ = run [ planarmon; "history"; ledger ] in
      check ci "consistent ledger exits 0" 0 code;
      check cb "both runs grouped" true (contains out " 2 ");
      (* Torn final line (crash mid-append): skipped with a warning,
         never fatal. *)
      let lines = slurp ledger in
      write_file ledger (lines ^ {|{"schema":"runs.ledg|});
      let code, _, err = run [ planarmon; "history"; ledger ] in
      check ci "torn line still exits 0" 0 code;
      check cb "torn line counted" true (contains err "skipped 1");
      (* Determinism drift: duplicate a record with a different digest
         under the same fingerprint. *)
      let l = List.hd (String.split_on_char '\n' lines) in
      let forged =
        replace_once l {|"digest":"|} {|"digest":"f0f0|}
      in
      write_file ledger (lines ^ forged ^ "\n");
      let code, out, _ = run [ planarmon; "history"; ledger ] in
      check ci "digest drift exits 1" 1 code;
      check cb "drift flagged in table" true (contains out "DRIFT"))

let test_history_missing_file () =
  let code, _, _ = run [ planarmon; "history"; "/nonexistent/runs.jsonl" ] in
  check ci "missing ledger exits 2" 2 code

let () =
  Alcotest.run "cli"
    [
      ( "planartrace",
        [
          Alcotest.test_case "bad arguments exit 2" `Quick
            test_planartrace_bad_args;
          Alcotest.test_case "corrupt input exits 2" `Quick
            test_planartrace_corrupt_input;
          Alcotest.test_case "--help exits 0" `Quick test_planartrace_help;
        ] );
      ( "planarmon",
        [
          Alcotest.test_case "compare agreement exits 0" `Quick
            test_planarmon_compare_ok;
          Alcotest.test_case "compare mismatch exits 1" `Quick
            test_planarmon_compare_mismatch;
          Alcotest.test_case "compare IO error exits 2" `Quick
            test_planarmon_compare_io_error;
          Alcotest.test_case "bad arguments exit 2" `Quick
            test_planarmon_bad_args;
        ] );
      ( "bench",
        [
          Alcotest.test_case "--json - splits streams" `Quick
            test_bench_stream_split;
          Alcotest.test_case "unknown --only id exits 2" `Quick
            test_bench_rejects_unknown_experiment;
          Alcotest.test_case "unknown --mode exits 2" `Quick
            test_bench_rejects_unknown_mode;
        ] );
      ( "mode",
        [
          Alcotest.test_case "planartest unknown --mode exits 2" `Quick
            test_planartest_rejects_unknown_mode;
          Alcotest.test_case "planartest stats identical across modes" `Quick
            test_planartest_mode_stats_identical;
          Alcotest.test_case "planartest unknown --property exits 2" `Quick
            test_planartest_rejects_unknown_property;
          Alcotest.test_case "planartest --property portfolio runs" `Quick
            test_planartest_property_runs;
          Alcotest.test_case "planartest property stats identical across modes"
            `Quick test_planartest_property_mode_stats_identical;
        ] );
      ( "live",
        [
          Alcotest.test_case "attach missing file exits 2" `Quick
            test_attach_missing_file;
          Alcotest.test_case "attach corrupt file exits 2" `Quick
            test_attach_corrupt_file;
          Alcotest.test_case "attach completed 0 / stalled 1" `Quick
            test_attach_completed_and_stalled;
          Alcotest.test_case "attach bad flags exit 2" `Quick
            test_attach_bad_flags;
          Alcotest.test_case "--progress silent when stderr is piped" `Quick
            test_progress_silent_when_not_tty;
          Alcotest.test_case "history groups, skips torn, flags drift" `Quick
            test_history_ledger_roundtrip;
          Alcotest.test_case "history missing ledger exits 2" `Quick
            test_history_missing_file;
        ] );
    ]
